// Package stats implements the descriptive and inferential statistics the
// measurement campaign reports: percentiles, boxplot summaries, empirical
// CDFs, time-binned series, histograms, Mood's median test (used by the
// paper to argue the absence of diurnal RTT patterns) and the two-sample
// Kolmogorov–Smirnov test (used by the Wehe-style traffic-discrimination
// detector).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoData is returned by estimators that need at least one sample.
var ErrNoData = errors.New("stats: no data")

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks (the "linear" / type-7
// estimator, matching numpy's default). xs need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if len(s) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min returns the smallest element of xs.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary is a multi-percentile description of a sample, the unit of
// reporting for the paper's boxplots (Figure 1) and timelines (Figure 2):
// whiskers at p5/p95, box at p25/p75, a median stroke and the absolute
// minimum printed on the top axis.
type Summary struct {
	N                      int
	Min, Max               float64
	P5, P25, P50, P75, P95 float64
	P90, P99               float64
	Mean, StdDev           float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{Min: nan, Max: nan, P5: nan, P25: nan, P50: nan, P75: nan, P95: nan, P90: nan, P99: nan, Mean: nan, StdDev: nan}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		P5:     percentileSorted(s, 5),
		P25:    percentileSorted(s, 25),
		P50:    percentileSorted(s, 50),
		P75:    percentileSorted(s, 75),
		P90:    percentileSorted(s, 90),
		P95:    percentileSorted(s, 95),
		P99:    percentileSorted(s, 99),
		Mean:   Mean(s),
		StdDev: StdDev(s),
	}
}

// String renders the summary compactly for harness output.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g p5=%.3g p25=%.3g p50=%.3g p75=%.3g p95=%.3g p99=%.3g max=%.3g",
		s.N, s.Min, s.P5, s.P25, s.P50, s.P75, s.P95, s.P99, s.Max)
}

// IQR returns the interquartile range p75-p25.
func (s Summary) IQR() float64 { return s.P75 - s.P25 }

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs.
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the number of samples behind the ECDF.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns F(x) = P[X <= x].
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	// Count of samples <= x.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-quantile (0<=q<=1) by linear interpolation.
func (e *ECDF) Quantile(q float64) float64 {
	return percentileSorted(e.sorted, q*100)
}

// Points returns up to n (x, F(x)) points spanning the support, suitable
// for plotting the CDF curves of Figures 3, 4 and 6.
func (e *ECDF) Points(n int) []Point {
	if len(e.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(e.sorted) {
		n = len(e.sorted)
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(e.sorted) - 1) / max(1, n-1)
		x := e.sorted[idx]
		pts = append(pts, Point{X: x, Y: float64(idx+1) / float64(len(e.sorted))})
	}
	return pts
}

// Point is a generic (x, y) sample of a curve.
type Point struct{ X, Y float64 }

// Histogram counts samples into equal-width bins over [lo, hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // samples < Lo
	Over   int // samples >= Hi
	Total  int
}

// NewHistogram builds a histogram of xs with the given bin count.
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		return &Histogram{Lo: lo, Hi: hi}
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		h.Total++
		switch {
		case x < lo:
			h.Under++
		case x >= hi:
			h.Over++
		default:
			h.Counts[int((x-lo)/width)]++
		}
	}
	return h
}

// CountBursts turns a slice of integer burst lengths into an ECDF over
// lengths, the form Figure 4 reports.
func CountBursts(lengths []int) *ECDF {
	xs := make([]float64, len(lengths))
	for i, l := range lengths {
		xs[i] = float64(l)
	}
	return NewECDF(xs)
}
