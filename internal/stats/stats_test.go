package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestPercentileKnownValues(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
		{40, 29}, // 15,20,35,40,50: rank=1.6 -> 20 + 0.6*(35-20) = 29
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileProperties(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	f := func(n uint8) bool {
		m := int(n%50) + 1
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		p50 := Percentile(xs, 50)
		// Median bounded by extremes and monotone in p.
		return p50 >= s[0] && p50 <= s[m-1] &&
			Percentile(xs, 25) <= p50 && p50 <= Percentile(xs, 75)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.N != 101 || s.Min != 0 || s.Max != 100 {
		t.Fatalf("summary basics wrong: %+v", s)
	}
	if s.P50 != 50 || s.P25 != 25 || s.P75 != 75 || s.P5 != 5 || s.P95 != 95 {
		t.Fatalf("percentiles wrong: %+v", s)
	}
	if s.IQR() != 50 {
		t.Fatalf("IQR = %v, want 50", s.IQR())
	}
	if math.Abs(s.Mean-50) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("F(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.N() != 4 {
		t.Errorf("N = %d", e.N())
	}
}

func TestECDFMonotone(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.ExpFloat64() * 50
	}
	e := NewECDF(xs)
	prev := -1.0
	for x := -10.0; x < 300; x += 1.7 {
		v := e.At(x)
		if v < prev {
			t.Fatalf("ECDF decreased at %v: %v < %v", x, v, prev)
		}
		if v < 0 || v > 1 {
			t.Fatalf("ECDF out of range at %v: %v", x, v)
		}
		prev = v
	}
}

func TestECDFQuantileInverse(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	e := NewECDF(xs)
	if q := e.Quantile(0.5); q != 30 {
		t.Errorf("Quantile(0.5) = %v", q)
	}
	if q := e.Quantile(0); q != 10 {
		t.Errorf("Quantile(0) = %v", q)
	}
	if q := e.Quantile(1); q != 50 {
		t.Errorf("Quantile(1) = %v", q)
	}
}

func TestECDFPoints(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	pts := NewECDF(xs).Points(10)
	if len(pts) != 10 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatal("points not monotone")
		}
	}
	if pts[len(pts)-1].Y != 1 {
		t.Errorf("last point Y = %v, want 1", pts[len(pts)-1].Y)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{-1, 0, 0.5, 1, 5, 9.99, 10, 42}, 0, 10, 10)
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 0.5
		t.Fatalf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[9] != 1 { // 9.99
		t.Fatalf("bin9 = %d", h.Counts[9])
	}
	if h.Total != 8 {
		t.Fatalf("total = %d", h.Total)
	}
}

func TestMoodsMedianSameDistribution(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	groups := make([][]float64, 8)
	for i := range groups {
		for j := 0; j < 300; j++ {
			groups[i] = append(groups[i], 50+5*r.NormFloat64())
		}
	}
	_, _, p := MoodsMedianTest(groups)
	if p < 0.01 {
		t.Errorf("same-median groups rejected: p = %v", p)
	}
}

func TestMoodsMedianDifferentMedians(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	groups := make([][]float64, 4)
	for i := range groups {
		shift := float64(i) * 10
		for j := 0; j < 300; j++ {
			groups[i] = append(groups[i], 50+shift+2*r.NormFloat64())
		}
	}
	_, _, p := MoodsMedianTest(groups)
	if p > 1e-6 {
		t.Errorf("clearly shifted groups not rejected: p = %v", p)
	}
}

func TestMoodsMedianDegenerate(t *testing.T) {
	if _, _, p := MoodsMedianTest(nil); p != 1 {
		t.Error("no groups should give p=1")
	}
	if _, _, p := MoodsMedianTest([][]float64{{1, 2, 3}}); p != 1 {
		t.Error("single group should give p=1")
	}
}

func TestChiSquaredSurvival(t *testing.T) {
	// Known values: P[X>=3.841 | df=1] ~ 0.05, P[X>=11.07 | df=5] ~ 0.05.
	cases := []struct {
		x    float64
		df   int
		want float64
	}{
		{3.841, 1, 0.05},
		{11.070, 5, 0.05},
		{6.635, 1, 0.01},
		{0, 3, 1},
	}
	for _, c := range cases {
		if got := ChiSquaredSurvival(c.x, c.df); math.Abs(got-c.want) > 0.002 {
			t.Errorf("chi2(%v, df=%d) = %v, want ~%v", c.x, c.df, got, c.want)
		}
	}
}

func TestKSIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	d, p := KolmogorovSmirnov(xs, xs)
	if d != 0 {
		t.Errorf("D = %v for identical samples", d)
	}
	if p < 0.99 {
		t.Errorf("p = %v for identical samples", p)
	}
}

func TestKSDisjointSamples(t *testing.T) {
	a := make([]float64, 100)
	b := make([]float64, 100)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(i) + 1000
	}
	d, p := KolmogorovSmirnov(a, b)
	if d != 1 {
		t.Errorf("D = %v for disjoint samples, want 1", d)
	}
	if p > 1e-10 {
		t.Errorf("p = %v for disjoint samples", p)
	}
}

func TestKSSameDistribution(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 10))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64()
	}
	_, p := KolmogorovSmirnov(a, b)
	if p < 0.001 {
		t.Errorf("same-distribution samples rejected: p = %v", p)
	}
}

func TestSeriesBinByTime(t *testing.T) {
	var s Series
	for i := 0; i < 48; i++ {
		s.Add(time.Duration(i)*time.Hour, float64(i))
	}
	bins := s.BinByTime(6 * time.Hour)
	if len(bins) != 8 {
		t.Fatalf("got %d bins, want 8", len(bins))
	}
	if bins[0].Start != 0 || bins[0].N != 6 || bins[0].Min != 0 || bins[0].Max != 5 {
		t.Fatalf("bin0 = %+v", bins[0])
	}
	if bins[7].Start != 42*time.Hour || bins[7].Max != 47 {
		t.Fatalf("bin7 = %+v", bins[7])
	}
}

func TestSeriesBinSkipsEmptyWindows(t *testing.T) {
	var s Series
	s.Add(0, 1)
	s.Add(25*time.Hour, 2)
	bins := s.BinByTime(6 * time.Hour)
	if len(bins) != 2 {
		t.Fatalf("got %d bins, want 2 (gap windows skipped)", len(bins))
	}
}

func TestSeriesGroupByHourOfDay(t *testing.T) {
	var s Series
	for d := 0; d < 3; d++ {
		for h := 0; h < 24; h++ {
			s.Add(time.Duration(d*24+h)*time.Hour+time.Minute, float64(h))
		}
	}
	groups := s.GroupByHourOfDay()
	for h, g := range groups {
		if len(g) != 3 {
			t.Fatalf("hour %d has %d samples, want 3", h, len(g))
		}
		for _, v := range g {
			if v != float64(h) {
				t.Fatalf("hour %d contains sample %v", h, v)
			}
		}
	}
}

func TestSeriesWindow(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i))
	}
	w := s.Window(3*time.Second, 6*time.Second)
	if len(w) != 3 || w[0] != 3 || w[2] != 5 {
		t.Fatalf("window = %v", w)
	}
}

func TestCountBursts(t *testing.T) {
	e := CountBursts([]int{1, 1, 1, 2, 3})
	if got := e.At(1); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("F(1) = %v, want 0.6", got)
	}
	if got := e.At(3); got != 1 {
		t.Errorf("F(3) = %v, want 1", got)
	}
}

func TestMinMaxMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Min(xs) != 2 || Max(xs) != 9 {
		t.Fatal("min/max wrong")
	}
	if Mean(xs) != 5 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if math.Abs(StdDev(xs)-2.138089935) > 1e-6 {
		t.Fatalf("stddev = %v", StdDev(xs))
	}
	if !math.IsNaN(StdDev([]float64{1})) {
		t.Fatal("stddev of single sample should be NaN")
	}
}
