package stats

import (
	"math"
	"sort"
)

// MoodsMedianTest performs Mood's median test on k groups: it tests the
// null hypothesis that all groups are drawn from distributions with the
// same median. The paper applies it to per-hour RTT samples to argue the
// absence of a diurnal cycle.
//
// It returns the chi-squared statistic, the degrees of freedom and the
// p-value (chi-squared upper tail). Groups with no data are skipped.
func MoodsMedianTest(groups [][]float64) (chi2 float64, df int, p float64) {
	var all []float64
	var used [][]float64
	for _, g := range groups {
		if len(g) > 0 {
			used = append(used, g)
			all = append(all, g...)
		}
	}
	if len(used) < 2 || len(all) == 0 {
		return 0, 0, 1
	}
	grand := Median(all)

	// 2 x k contingency table of counts above / at-or-below the grand
	// median, compared with expectations under the null.
	above := make([]float64, len(used))
	below := make([]float64, len(used))
	var totAbove, totBelow float64
	for i, g := range used {
		for _, x := range g {
			if x > grand {
				above[i]++
			} else {
				below[i]++
			}
		}
		totAbove += above[i]
		totBelow += below[i]
	}
	total := totAbove + totBelow
	if totAbove == 0 || totBelow == 0 {
		return 0, len(used) - 1, 1
	}
	for i, g := range used {
		n := float64(len(g))
		expAbove := n * totAbove / total
		expBelow := n * totBelow / total
		if expAbove > 0 {
			d := above[i] - expAbove
			chi2 += d * d / expAbove
		}
		if expBelow > 0 {
			d := below[i] - expBelow
			chi2 += d * d / expBelow
		}
	}
	df = len(used) - 1
	return chi2, df, ChiSquaredSurvival(chi2, df)
}

// ChiSquaredSurvival returns P[X >= x] for a chi-squared distribution with
// df degrees of freedom, via the regularized upper incomplete gamma
// function Q(df/2, x/2).
func ChiSquaredSurvival(x float64, df int) float64 {
	if x <= 0 || df <= 0 {
		return 1
	}
	return gammaQ(float64(df)/2, x/2)
}

// gammaQ computes the regularized upper incomplete gamma function Q(a, x)
// using the series for x < a+1 and the continued fraction otherwise
// (Numerical Recipes §6.2).
func gammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

func gammaPSeries(a, x float64) float64 {
	const itmax = 500
	const eps = 3e-14
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < itmax; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQContinuedFraction(a, x float64) float64 {
	const itmax = 500
	const eps = 3e-14
	const fpmin = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= itmax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// KolmogorovSmirnov performs the two-sample KS test and returns the
// statistic D = sup|F1 - F2| and an asymptotic p-value. The Wehe-style
// traffic-discrimination detector compares the throughput distribution of
// an original replay against a randomized replay with it.
func KolmogorovSmirnov(a, b []float64) (d float64, p float64) {
	if len(a) == 0 || len(b) == 0 {
		return 0, 1
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var i, j int
	na, nb := float64(len(sa)), float64(len(sb))
	for i < len(sa) && j < len(sb) {
		x := math.Min(sa[i], sb[j])
		for i < len(sa) && sa[i] <= x {
			i++
		}
		for j < len(sb) && sb[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/na - float64(j)/nb)
		if diff > d {
			d = diff
		}
	}
	ne := na * nb / (na + nb)
	return d, ksProbability((math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d)
}

// ksProbability evaluates the Kolmogorov distribution tail
// Q_KS(lambda) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2).
func ksProbability(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * 2 * math.Exp(-2*float64(j*j)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	if sum < 0 {
		return 0
	}
	if sum > 1 {
		return 1
	}
	return sum
}
