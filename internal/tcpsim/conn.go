package tcpsim

import (
	"time"

	"starlinkperf/internal/cc"
	"starlinkperf/internal/netem"
	"starlinkperf/internal/obs"
	"starlinkperf/internal/sim"
)

// tcpObs caches the metric handles a connection writes into; one is
// built per connection from Config.Obs, all pointing at the same shared
// registry/tracer, so counters aggregate across connections.
type tcpObs struct {
	tr       *obs.Tracer
	subj     obs.Subj
	rtos     *obs.Counter
	fastRetx *obs.Counter
	cwnd     *obs.Histogram
}

func newTCPObs(s *obs.Sink) *tcpObs {
	if s == nil {
		return nil
	}
	reg, tr := s.Registry(), s.Tracer()
	return &tcpObs{
		tr:       tr,
		subj:     tr.Subject("tcp"),
		rtos:     reg.Counter("tcp.rto"),
		fastRetx: reg.Counter("tcp.fast_retx"),
		cwnd:     reg.Histogram("tcp.cwnd_bytes", obs.SizeBounds()),
	}
}

// Config carries the TCP/TLS parameters of one endpoint.
type Config struct {
	// MSS is the maximum segment size (payload bytes).
	MSS int
	// InitialRcvWnd and MaxRcvWnd bound the receive window autotuning;
	// the defaults are the Linux testbed kernel's 131072 and 6291456.
	InitialRcvWnd uint64
	MaxRcvWnd     uint64
	// TLSRounds models the TLS handshake: 0 = plain TCP, 1 = TLS 1.3
	// (one round trip), 2 = TLS 1.2 (two round trips — the prevailing
	// web mix during the paper's campaign). The handshake is emulated by
	// byte counts, not negotiated: both endpoints of a connection must
	// be configured with the same value.
	TLSRounds int
	// ServerProcessing is the server-side compute delay before TLS
	// responses.
	ServerProcessing time.Duration
	// NewCC builds the congestion controller per connection; nil means
	// CUBIC, as on the paper's testbed.
	NewCC func(mss int) cc.CongestionController
	// FastOpen lets the active side treat the connection as established
	// as soon as the SYN leaves, with data flowing right behind it —
	// how satellite PEPs run their pre-provisioned space-segment
	// connections (TFO-style 0-RTT).
	FastOpen bool
	// MinRTO floors the retransmission timeout (Linux: 200 ms).
	MinRTO time.Duration
	// DelayedAck is the delayed-ACK timer (Linux: 40 ms).
	DelayedAck time.Duration
	// EnablePacing spaces data-segment departures at the rate derived
	// from the congestion controller (gain x cwnd/SRTT, or the
	// controller's own rate when it implements cc.PacingRater). Off by
	// default: the paper's testbed kernel ran without fq pacing.
	EnablePacing bool
	// PacingBurst caps the pacer's back-to-back burst allowance in
	// segments; zero means cc.DefaultBurstPackets.
	PacingBurst int
	// RTTMinWindow bounds the age of the RTT estimator's minimum filter
	// (see cc.RTTEstimator.MinWindow). Zero keeps the all-time minimum.
	RTTMinWindow time.Duration
	// Obs, when non-nil, reports retransmission counters, RTO trace
	// events, and cwnd samples for every connection built with this
	// config. Disabled observability is the nil default: one pointer
	// test per instrumented site.
	Obs *obs.Sink
}

// DefaultConfig returns the paper-testbed TCP configuration.
func DefaultConfig() Config {
	return Config{
		MSS:              1460,
		InitialRcvWnd:    131072,
		MaxRcvWnd:        6291456,
		TLSRounds:        2,
		ServerProcessing: 10 * time.Millisecond,
		MinRTO:           200 * time.Millisecond,
		DelayedAck:       40 * time.Millisecond,
	}
}

// TLS flight sizes in bytes.
const (
	tlsClientHello    = 300
	tlsServerFlight   = 4000
	tlsClientFinish13 = 52
	tlsClientFlight12 = 400
	tlsServerFinish12 = 300
)

// State is the connection lifecycle state.
type State uint8

// Connection states.
const (
	StateIdle State = iota
	StateSYNSent
	StateSYNRcvd
	StateEstablished // TCP established; TLS possibly still running
	StateClosed
)

// Stats aggregates connection counters.
type Stats struct {
	SegmentsSent    uint64
	SegmentsRecv    uint64
	BytesSent       uint64 // payload, first transmissions
	BytesRetx       uint64
	BytesDelivered  uint64 // payload delivered in order to the app side
	RTOs            uint64
	FastRetransmits uint64
}

type txRecord struct {
	start, end uint64
	sentAt     sim.Time
	retx       bool
}

// Conn is one endpoint of a TCP connection.
type Conn struct {
	sched    *sim.Scheduler
	cfg      Config
	transmit func(*netem.Packet)
	isClient bool

	// node, when set, supplies pooled packet wrappers; pool additionally
	// enables the per-connection segment freelist (both off in the
	// network's reference mode). Segments return here from the datapath
	// via Segment.ReleasePayload once the carrying packet is consumed.
	node    *netem.Node
	pool    bool
	segFree []*Segment

	localAddr  netem.Addr
	localPort  uint16
	remoteAddr netem.Addr
	remotePort uint16

	state        State
	tlsReady     bool
	peerSynAcked bool // active side saw the SYN-ACK

	// Timestamps for setup-time measurement.
	StartAt        sim.Time
	TCPEstablished sim.Time
	ReadyAt        sim.Time

	// Send state.
	sendEnd          uint64 // total bytes queued for sending (TLS + app)
	sndUna           uint64
	sndNxt           uint64
	retxQueue        byteRanges
	inflightQ        []*txRecord
	inflightH        int
	candidates       []*txRecord
	pipe             int        // bytes in flight (RFC 6675 pipe estimate)
	sacked           byteRanges // peer-reported SACK state, persistent
	highestDelivered uint64
	peerWnd          uint64
	finQueued        bool
	finSent          bool
	finAcked         bool
	ccc              cc.CongestionController
	rtt              cc.RTTEstimator
	pacer            cc.Pacer
	pacingTimer      sim.TimerHandle
	rtoCount         int
	rtoTimer         sim.TimerHandle
	synTimer         sim.TimerHandle
	lastRecvTS       sim.Time
	lastRecvTSRetx   bool

	// Receive state.
	rcvNxt         uint64
	recvRanges     byteRanges
	peerFinSeq     uint64
	peerFinSeen    bool
	finDelivered   bool
	rcvWnd         uint64
	bytesSinceTune uint64
	segsSinceAck   int
	ackTimer       sim.TimerHandle

	// Application messages.
	msgsOut     []AppMsg       // pending, sorted by offset
	msgsIn      map[uint64]any // received, awaiting in-order delivery
	msgsInOrder []uint64       // sorted keys of msgsIn

	// TLS bookkeeping.
	tlsSendQueued uint64 // TLS bytes we queued (prefix of the stream)
	tlsRecvTotal  uint64 // TLS bytes the peer sends before app data
	tlsStage      int

	// Application callbacks. OnEstablished fires when the connection is
	// ready for application data (after TLS); OnData delivers in-order
	// application byte counts.
	OnEstablished func()
	OnData        func(n int, fin bool)
	OnClosed      func()
	// OnMsg delivers application messages attached with WriteMsg, in
	// stream order, once the carrying bytes arrive in order.
	OnMsg func(msg any)
	// BacklogFn, when set, reports unconsumed application backlog held
	// behind this receiver (a relay's un-forwarded bytes): the
	// advertised window shrinks by it, back-pressuring the sender.
	BacklogFn func() int
	// OnSendProgress fires when the cumulative ack advances — relays
	// use it to re-open the peer's window as their backlog drains.
	OnSendProgress func()
	// closeHook runs on teardown before OnClosed; the Dial/Listen glue
	// uses it to unbind ports without racing user callbacks.
	closeHook func()

	obs *tcpObs

	Stats Stats
}

// ConnParams parameterizes direct connection construction (used by the
// Dial/Listen glue and by the PEP middlebox for spoofed legs).
type ConnParams struct {
	Sched    *sim.Scheduler
	Transmit func(*netem.Packet)
	// Node, when set, identifies the node this endpoint lives on; the
	// connection then draws packet wrappers (and, outside reference mode,
	// TCP segments) from pools instead of allocating per send.
	Node       *netem.Node
	LocalAddr  netem.Addr
	LocalPort  uint16
	RemoteAddr netem.Addr
	RemotePort uint16
	IsClient   bool
	Config     Config
}

// NewConn constructs a connection. Clients start the handshake with
// Start; servers wait for a SYN via HandleSegment.
func NewConn(p ConnParams) *Conn {
	cfg := p.Config
	if cfg.MSS == 0 {
		cfg.MSS = 1460
	}
	if cfg.InitialRcvWnd == 0 {
		cfg.InitialRcvWnd = 131072
	}
	if cfg.MaxRcvWnd == 0 {
		cfg.MaxRcvWnd = 6291456
	}
	if cfg.MinRTO == 0 {
		cfg.MinRTO = 200 * time.Millisecond
	}
	if cfg.DelayedAck == 0 {
		cfg.DelayedAck = 40 * time.Millisecond
	}
	newCC := cfg.NewCC
	if newCC == nil {
		newCC = func(mss int) cc.CongestionController { return cc.NewCubic(mss) }
	}
	c := &Conn{
		sched:      p.Sched,
		cfg:        cfg,
		transmit:   p.Transmit,
		isClient:   p.IsClient,
		node:       p.Node,
		pool:       p.Node != nil && !p.Node.Network().Reference(),
		localAddr:  p.LocalAddr,
		localPort:  p.LocalPort,
		remoteAddr: p.RemoteAddr,
		remotePort: p.RemotePort,
		ccc:        newCC(cfg.MSS),
		pacer:      cc.Pacer{Enabled: cfg.EnablePacing, BurstPackets: cfg.PacingBurst},
		rcvWnd:     cfg.InitialRcvWnd,
		peerWnd:    cfg.InitialRcvWnd,
		StartAt:    p.Sched.Now(),
		obs:        newTCPObs(cfg.Obs),
	}
	c.rtt.MinWindow = cfg.RTTMinWindow
	// How many TLS bytes will the peer send before application data?
	if p.IsClient {
		switch cfg.TLSRounds {
		case 1:
			c.tlsRecvTotal = tlsServerFlight
		case 2:
			c.tlsRecvTotal = tlsServerFlight + tlsServerFinish12
		}
	} else {
		switch cfg.TLSRounds {
		case 1:
			c.tlsRecvTotal = tlsClientHello + tlsClientFinish13
		case 2:
			c.tlsRecvTotal = tlsClientHello + tlsClientFlight12
		}
	}
	return c
}

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// Ready reports whether the connection is usable for application data.
func (c *Conn) Ready() bool { return c.tlsReady }

// RTT returns the RTT estimator.
func (c *Conn) RTT() *cc.RTTEstimator { return &c.rtt }

// CC returns the congestion controller.
func (c *Conn) CC() cc.CongestionController { return c.ccc }

// SetupTime returns the connection + TLS establishment duration, valid
// once Ready.
func (c *Conn) SetupTime() time.Duration { return c.ReadyAt.Sub(c.StartAt) }

// Start begins the client handshake.
func (c *Conn) Start() {
	if c.state != StateIdle || !c.isClient {
		return
	}
	c.state = StateSYNSent
	c.sendSYN()
	if c.cfg.FastOpen {
		c.tcpEstablish()
	}
}

func (c *Conn) sendSYN() {
	flags := FlagSYN
	if !c.isClient {
		flags |= FlagACK
	}
	seg := c.newSegment()
	seg.Flags, seg.Wnd = flags, c.rcvWnd
	c.send(seg)
	backoff := time.Second << uint(min(c.rtoCount, 6))
	c.synTimer = c.sched.AfterFunc(backoff, connSynRetry, c)
}

func (c *Conn) onSynRetry() {
	needsRetry := c.state == StateSYNSent || c.state == StateSYNRcvd ||
		(c.cfg.FastOpen && c.isClient && !c.peerSynAcked && c.state == StateEstablished)
	if !needsRetry {
		return
	}
	if c.rtoCount >= 6 {
		// Handshake gives up (Linux tcp_syn_retries): frees state
		// left behind by half-open probes.
		c.teardown()
		return
	}
	c.rtoCount++
	c.Stats.RTOs++
	c.sendSYN()
}

// Write queues n application bytes for sending.
func (c *Conn) Write(n int) {
	if n <= 0 || c.finQueued || c.state == StateClosed {
		return
	}
	c.sendEnd += uint64(n)
	c.maybeSend()
}

// WriteMsg queues n bytes whose first byte carries an application
// message: the peer's OnMsg fires when that byte is delivered in order.
// This is how request/response protocols ride the byte-count payload
// model (the web server learns the object size it must answer with).
func (c *Conn) WriteMsg(n int, msg any) {
	if n <= 0 || c.finQueued || c.state == StateClosed {
		return
	}
	c.msgsOut = append(c.msgsOut, AppMsg{Off: c.sendEnd, Msg: msg})
	c.sendEnd += uint64(n)
	c.maybeSend()
}

// appendMsgsInRange appends pending outgoing messages anchored in
// [start, end) to dst, reusing its backing array.
func (c *Conn) appendMsgsInRange(dst []AppMsg, start, end uint64) []AppMsg {
	for _, m := range c.msgsOut {
		if m.Off >= start && m.Off < end {
			dst = append(dst, m)
		}
	}
	return dst
}

// pruneAckedMsgs drops outgoing messages fully below snd.una.
func (c *Conn) pruneAckedMsgs() {
	keep := c.msgsOut[:0]
	for _, m := range c.msgsOut {
		if m.Off >= c.sndUna {
			keep = append(keep, m)
		}
	}
	c.msgsOut = keep
}

// Close queues the FIN after all pending data.
func (c *Conn) Close() {
	if c.finQueued || c.state == StateClosed {
		return
	}
	c.finQueued = true
	c.maybeSend()
}

// Abort tears the connection down immediately (RST semantics).
func (c *Conn) Abort() {
	if c.state == StateClosed {
		return
	}
	seg := c.newSegment()
	seg.Flags = FlagRST
	c.send(seg)
	c.teardown()
}

func (c *Conn) teardown() {
	c.state = StateClosed
	c.rtoTimer.Stop()
	c.synTimer.Stop()
	c.ackTimer.Stop()
	c.pacingTimer.Stop()
	if c.closeHook != nil {
		c.closeHook()
	}
	if c.OnClosed != nil {
		c.OnClosed()
	}
}

// queueTLS appends TLS bytes to the send stream (they precede all app
// data because TLS drives the stream first).
func (c *Conn) queueTLS(n int) {
	c.sendEnd += uint64(n)
	c.tlsSendQueued += uint64(n)
	c.maybeSend()
}

func (c *Conn) becomeReady() {
	if c.tlsReady {
		return
	}
	c.tlsReady = true
	c.ReadyAt = c.sched.Now()
	if c.OnEstablished != nil {
		c.OnEstablished()
	}
}

// tcpEstablished transitions into StateEstablished and starts TLS.
func (c *Conn) tcpEstablish() {
	if c.state == StateEstablished {
		return
	}
	c.state = StateEstablished
	c.TCPEstablished = c.sched.Now()
	if !c.cfg.FastOpen || !c.isClient || c.peerSynAcked {
		c.synTimer.Stop()
	}
	c.rtoCount = 0
	if c.cfg.TLSRounds == 0 {
		c.becomeReady()
	} else if c.isClient {
		c.queueTLS(tlsClientHello)
	}
	// Flush anything queued before establishment (PEP legs buffer
	// relayed bytes while their own handshake is still in flight).
	c.maybeSend()
}

// tlsProgress advances the TLS state machine as in-order bytes arrive.
func (c *Conn) tlsProgress() {
	if c.tlsReady || c.cfg.TLSRounds == 0 || c.state != StateEstablished {
		return
	}
	got := c.rcvNxt
	if c.isClient {
		switch {
		case c.tlsStage == 0 && got >= tlsServerFlight:
			c.tlsStage = 1
			if c.cfg.TLSRounds == 1 {
				c.queueTLS(tlsClientFinish13)
				c.becomeReady()
			} else {
				c.queueTLS(tlsClientFlight12)
			}
		case c.tlsStage == 1 && c.cfg.TLSRounds == 2 && got >= tlsServerFlight+tlsServerFinish12:
			c.becomeReady()
		}
		return
	}
	// Server.
	switch {
	case c.tlsStage == 0 && got >= tlsClientHello:
		c.tlsStage = 1
		c.sched.After(c.cfg.ServerProcessing, func() {
			if c.state != StateClosed {
				c.queueTLS(tlsServerFlight)
			}
		})
	case c.tlsStage == 1 && c.cfg.TLSRounds == 1 && got >= tlsClientHello+tlsClientFinish13:
		c.becomeReady()
	case c.tlsStage == 1 && c.cfg.TLSRounds == 2 && got >= tlsClientHello+tlsClientFlight12:
		c.tlsStage = 2
		c.sched.After(c.cfg.ServerProcessing, func() {
			if c.state != StateClosed {
				c.queueTLS(tlsServerFinish12)
				c.becomeReady()
			}
		})
	}
}

// advertisedWnd returns the receive window to advertise, net of any
// relay backlog.
func (c *Conn) advertisedWnd() uint64 {
	w := c.rcvWnd
	if c.BacklogFn != nil {
		if b := uint64(c.BacklogFn()); b < w {
			w -= b
		} else {
			w = 0
		}
	}
	return w
}

// newSegment returns a zeroed segment for sending: from the connection's
// freelist when pooling, a plain allocation otherwise (the datapath never
// recycles owner-less segments, so reference mode reproduces the seed
// allocation pattern exactly).
func (c *Conn) newSegment() *Segment {
	if !c.pool {
		return &Segment{}
	}
	if n := len(c.segFree); n > 0 {
		s := c.segFree[n-1]
		c.segFree[n-1] = nil
		c.segFree = c.segFree[:n-1]
		s.pooled = false
		return s
	}
	return &Segment{owner: c}
}

// send transmits a segment with common fields stamped.
func (c *Conn) send(seg *Segment) {
	seg.TS = c.sched.Now()
	if seg.Flags&FlagACK != 0 || seg.Len > 0 {
		seg.Wnd = c.advertisedWnd()
	}
	c.Stats.SegmentsSent++
	var pkt *netem.Packet
	if c.node != nil {
		pkt = c.node.NewPacket()
	} else {
		pkt = &netem.Packet{}
	}
	pkt.Src = c.localAddr
	pkt.Dst = c.remoteAddr
	pkt.SrcPort = c.localPort
	pkt.DstPort = c.remotePort
	pkt.Proto = netem.ProtoTCP
	pkt.Size = seg.wireSize()
	pkt.Payload = seg
	c.transmit(pkt)
}

// outstanding returns un-acked sequence space.
func (c *Conn) outstanding() uint64 {
	if c.sndNxt < c.sndUna {
		return 0
	}
	return c.sndNxt - c.sndUna
}

// maybeSend drives the data sender. Retransmissions are gated by the
// congestion window against the pipe estimate; new data additionally by
// the peer's receive window against the sequence range (RFC 6675-style
// recovery, so losses never deadlock the sender).
func (c *Conn) maybeSend() {
	if c.state != StateEstablished {
		return
	}
	for {
		ccBudget := int64(c.ccc.Window()) - int64(c.pipe)
		if ccBudget <= 0 {
			break
		}

		// Pacing gate: before a payload-bearing segment goes out, ask the
		// pacer for clearance at full-MSS granularity (the dominant
		// segment size in bulk flows; short tails over-charge a few bytes
		// of bucket, which only ever delays, never bursts). Deferral
		// leaves all send state untouched and retries on the timer.
		if c.pacer.Enabled && (len(c.retxQueue.ranges) > 0 || c.sndNxt < c.sendEnd) {
			d := c.pacer.DelayFor(c.sched.Now(), headerOverhead+c.cfg.MSS, c.ccc, &c.rtt)
			if d > 0 {
				if !c.pacingTimer.Pending() {
					c.pacingTimer = c.sched.AfterFunc(d, connPaceSend, c)
				}
				break
			}
		}

		// Retransmissions first.
		if len(c.retxQueue.ranges) > 0 {
			r := c.retxQueue.ranges[0]
			if r.End <= c.sndUna {
				c.retxQueue.ranges = c.retxQueue.ranges[1:]
				continue
			}
			start := r.Start
			if start < c.sndUna {
				start = c.sndUna
			}
			if start >= c.sendEnd {
				// The range covers only the FIN's virtual byte.
				c.retxQueue.ranges = c.retxQueue.ranges[1:]
				seg := c.newSegment()
				seg.Flags, seg.Seq, seg.Ack, seg.Retx = FlagACK|FlagFIN, c.sendEnd, c.ackValue(), true
				c.trackTx(c.sendEnd, c.sendEnd+1, true)
				c.send(seg)
				c.armRTO()
				continue
			}
			n := int(r.End - start)
			if start+uint64(n) > c.sendEnd {
				n = int(c.sendEnd - start) // keep the FIN byte separate
			}
			if n > c.cfg.MSS {
				n = c.cfg.MSS
			}
			if start+uint64(n) >= r.End {
				c.retxQueue.ranges = c.retxQueue.ranges[1:]
			} else {
				c.retxQueue.ranges[0].Start = start + uint64(n)
			}
			c.Stats.BytesRetx += uint64(n)
			fin := c.finSent && start+uint64(n) == c.sendEnd && r.End > c.sendEnd
			seg := c.newSegment()
			seg.Flags, seg.Seq, seg.Len, seg.Ack, seg.Retx = FlagACK, start, n, c.ackValue(), true
			seg.Msgs = c.appendMsgsInRange(seg.Msgs, start, start+uint64(n))
			end := start + uint64(n)
			if fin {
				seg.Flags |= FlagFIN
				end++
			}
			c.trackTx(start, end, true)
			c.send(seg)
			c.armRTO()
			continue
		}

		// Fresh data.
		if c.sndNxt < c.sendEnd {
			rwndBudget := int64(c.peerWnd) - int64(c.outstanding())
			n := int(c.sendEnd - c.sndNxt)
			if n > c.cfg.MSS {
				n = c.cfg.MSS
			}
			if int64(n) > ccBudget {
				n = int(ccBudget)
			}
			if int64(n) > rwndBudget {
				n = int(rwndBudget)
			}
			if n <= 0 {
				break
			}
			fin := false
			if c.finQueued && !c.finSent && c.sndNxt+uint64(n) == c.sendEnd {
				fin = true
				c.finSent = true
			}
			seg := c.newSegment()
			seg.Flags, seg.Seq, seg.Len, seg.Ack = FlagACK, c.sndNxt, n, c.ackValue()
			seg.Msgs = c.appendMsgsInRange(seg.Msgs, c.sndNxt, c.sndNxt+uint64(n))
			if fin {
				seg.Flags |= FlagFIN
			}
			c.trackTx(c.sndNxt, c.sndNxt+uint64(n)+boolTo64(fin), false)
			c.sndNxt += uint64(n) + boolTo64(fin)
			c.Stats.BytesSent += uint64(n)
			c.send(seg)
			c.armRTO()
			continue
		}

		// Bare FIN.
		if c.finQueued && !c.finSent && c.sndNxt == c.sendEnd {
			c.finSent = true
			seg := c.newSegment()
			seg.Flags, seg.Seq, seg.Ack = FlagACK|FlagFIN, c.sndNxt, c.ackValue()
			c.trackTx(c.sndNxt, c.sndNxt+1, false)
			c.sndNxt++
			c.send(seg)
			c.armRTO()
		}
		break
	}
}

func boolTo64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (c *Conn) trackTx(start, end uint64, retx bool) {
	c.inflightQ = append(c.inflightQ, &txRecord{start: start, end: end, sentAt: c.sched.Now(), retx: retx})
	c.pipe += int(end - start)
	// First transmissions only: TCP retransmits reuse sequence space, so
	// counting them again would double a rate-sampling controller's
	// in-flight estimate (QUIC retransmits under fresh packet numbers and
	// has no such aliasing).
	if !retx {
		c.ccc.OnPacketSent(c.sched.Now(), int(end-start))
	}
}

// armRTO arms the retransmission timer if it is not already pending;
// restartRTO rearms it unconditionally (on cumulative-ACK advance, per
// RFC 6298 §5.3).
func (c *Conn) armRTO() {
	if c.rtoTimer.Pending() {
		return
	}
	c.restartRTO()
}

func (c *Conn) restartRTO() {
	c.rtoTimer.Stop()
	rto := c.rtt.PTO(0)
	if rto < c.cfg.MinRTO {
		rto = c.cfg.MinRTO
	}
	rto <<= uint(min(c.rtoCount, 8))
	c.rtoTimer = c.sched.AfterFunc(rto, connRTO, c)
}

func (c *Conn) onRTO() {
	if c.state != StateEstablished || c.outstanding() == 0 {
		return
	}
	c.rtoCount++
	c.Stats.RTOs++
	if c.obs != nil {
		c.obs.rtos.Inc()
		c.obs.tr.Emit(c.sched.Now(), obs.KindRTO, c.obs.subj, int64(c.rtoCount), 0)
	}
	// Timeout: everything in flight is presumed lost. Collapse the pipe
	// and requeue the un-SACKed parts of the outstanding window.
	c.inflightQ = c.inflightQ[:0]
	c.inflightH = 0
	c.candidates = c.candidates[:0]
	c.pipe = 0
	start := c.sndUna
	for _, b := range c.sacked.ranges {
		if b.End <= start {
			continue
		}
		if b.Start > start {
			hole := b.Start
			if hole > c.sndNxt {
				hole = c.sndNxt
			}
			c.retxQueue.insert(start, hole)
		}
		start = b.End
	}
	if start < c.sndNxt {
		c.retxQueue.insert(start, c.sndNxt)
	}
	c.ccc.OnCongestionEvent(c.sched.Now(), c.sched.Now())
	c.maybeSend()
	c.armRTO()
}

// ackValue returns the cumulative ack we currently owe the peer.
func (c *Conn) ackValue() uint64 { return c.rcvNxt }

// HandleSegment ingests a packet addressed to this connection.
func (c *Conn) HandleSegment(pkt *netem.Packet) {
	seg, ok := pkt.Payload.(*Segment)
	if !ok || c.state == StateClosed {
		return
	}
	now := c.sched.Now()
	c.Stats.SegmentsRecv++

	if seg.Flags&FlagRST != 0 {
		c.teardown()
		return
	}

	// Handshake transitions.
	switch {
	case seg.Flags&FlagSYN != 0 && seg.Flags&FlagACK == 0:
		// Passive open: answer SYN-ACK.
		if c.state == StateIdle || c.state == StateSYNRcvd {
			c.state = StateSYNRcvd
			c.peerWnd = seg.Wnd
			c.sendSYN()
		}
		return
	case seg.Flags&FlagSYN != 0 && seg.Flags&FlagACK != 0:
		// Active side: SYN-ACK completes our handshake. A fast-open
		// connection is already established locally but must still
		// acknowledge so the passive side leaves SYN-RCVD.
		if c.state == StateSYNSent || (c.cfg.FastOpen && c.isClient && !c.peerSynAcked) {
			c.peerSynAcked = true
			c.synTimer.Stop()
			c.peerWnd = seg.Wnd
			rep := c.newSegment()
			rep.Flags, rep.Ack, rep.Wnd = FlagACK, c.ackValue(), c.rcvWnd
			c.send(rep)
			c.tcpEstablish()
		}
		return
	}
	if c.state == StateSYNRcvd && seg.Flags&FlagACK != 0 {
		c.tcpEstablish()
		// Fall through: the ACK may carry data (TLS client hello rides
		// close behind).
	}
	if c.state != StateEstablished {
		return
	}

	if seg.Flags&FlagACK != 0 || seg.Len > 0 {
		c.peerWnd = seg.Wnd
	}

	// Sender-side processing of the ACK/SACK information.
	c.processAck(seg, now)

	// Receiver-side processing of payload.
	if seg.Len > 0 || seg.Flags&FlagFIN != 0 {
		c.processData(seg)
	}

	c.maybeSend()
}

func (c *Conn) processAck(seg *Segment, now sim.Time) {
	if seg.Flags&FlagACK == 0 {
		return
	}
	if seg.Echo != 0 {
		c.rtt.UpdateAt(now, now.Sub(seg.Echo), 0)
	}
	if seg.Ack > c.sndUna {
		c.sndUna = seg.Ack
		c.rtoCount = 0
		c.pruneAckedMsgs()
		c.restartRTO()
		if c.OnSendProgress != nil {
			c.OnSendProgress()
		}
	}
	for _, b := range seg.Sack {
		c.sacked.insert(b.Start, b.End)
	}
	c.sacked.trimBelow(c.sndUna)
	if c.finSent && c.sndUna >= c.sendEnd+1 && !c.finAcked {
		c.finAcked = true
		c.maybeFinish()
	}

	delivered := func(start, end uint64) bool {
		return end <= c.sndUna || c.sacked.covered(start, end)
	}
	maxD := seg.Ack
	for _, b := range seg.Sack {
		if b.End > maxD {
			maxD = b.End
		}
	}
	if maxD > c.highestDelivered {
		c.highestDelivered = maxD
	}

	lossDelay := c.rtt.LossDelay()
	var lost []*txRecord

	// Drain the in-order queue up to the highest delivered byte.
	for c.inflightH < len(c.inflightQ) {
		r := c.inflightQ[c.inflightH]
		if r.end > c.highestDelivered {
			break
		}
		c.inflightH++
		if delivered(r.start, r.end) {
			c.onRecordAcked(r, now)
		} else {
			c.candidates = append(c.candidates, r)
		}
	}
	if c.inflightH > 64 && c.inflightH*2 >= len(c.inflightQ) {
		n := copy(c.inflightQ, c.inflightQ[c.inflightH:])
		c.inflightQ = c.inflightQ[:n]
		c.inflightH = 0
	}

	kept := c.candidates[:0]
	for _, r := range c.candidates {
		// A retransmission keeps its original sequence numbers, so the
		// sequence-overtaken rule would misfire on it instantly; only
		// the time threshold applies (RACK-style).
		seqLost := !r.retx && c.highestDelivered >= r.end+uint64(3*c.cfg.MSS)
		switch {
		case delivered(r.start, r.end):
			c.onRecordAcked(r, now)
		case seqLost, now.Sub(r.sentAt) >= lossDelay:
			lost = append(lost, r)
		default:
			kept = append(kept, r)
		}
	}
	c.candidates = kept

	for _, r := range lost {
		c.pipe -= int(r.end - r.start)
		c.Stats.FastRetransmits++
		if c.obs != nil {
			c.obs.fastRetx.Inc()
		}
		start := r.start
		if start < c.sndUna {
			start = c.sndUna
		}
		if start < r.end {
			c.retxQueue.insert(start, r.end)
		}
		c.ccc.OnCongestionEvent(now, r.sentAt)
	}

	if c.outstanding() == 0 {
		c.rtoTimer.Stop()
	}
}

func (c *Conn) onRecordAcked(r *txRecord, now sim.Time) {
	c.pipe -= int(r.end - r.start)
	c.ccc.OnPacketAcked(now, int(r.end-r.start), &c.rtt)
	if c.obs != nil {
		c.obs.cwnd.Observe(int64(c.ccc.Window()))
	}
}

func (c *Conn) processData(seg *Segment) {
	for _, m := range seg.Msgs {
		if m.Off >= c.rcvNxt {
			if c.msgsIn == nil {
				c.msgsIn = make(map[uint64]any)
			}
			if _, dup := c.msgsIn[m.Off]; !dup {
				c.msgsIn[m.Off] = m.Msg
				c.insertMsgKey(m.Off)
			}
		}
	}
	if seg.Flags&FlagFIN != 0 {
		c.peerFinSeq = seg.Seq + uint64(seg.Len)
		c.peerFinSeen = true
	}
	inOrder := seg.Seq <= c.rcvNxt
	if seg.Len > 0 {
		c.recvRanges.insert(seg.Seq, seg.Seq+uint64(seg.Len))
	}
	prev := c.rcvNxt
	c.rcvNxt = c.recvRanges.contiguousFrom(c.rcvNxt)
	newBytes := c.rcvNxt - prev

	finNow := false
	if c.peerFinSeen && c.rcvNxt == c.peerFinSeq && !c.finDelivered {
		c.finDelivered = true
		c.rcvNxt++ // FIN consumes one sequence number
		finNow = true
		c.maybeFinish()
	}

	if newBytes > 0 || finNow {
		c.deliverSpan(prev, prev+newBytes, finNow)
		c.tlsProgress()
		c.autotune(newBytes)
	}

	// ACK policy: immediate on out-of-order or every second segment,
	// else delayed.
	c.segsSinceAck++
	c.lastRecvTS = seg.TS
	c.lastRecvTSRetx = seg.Retx
	if !inOrder || c.segsSinceAck >= 2 || finNow {
		c.sendAck()
	} else if !c.ackTimer.Pending() {
		c.ackTimer = c.sched.AfterFunc(c.cfg.DelayedAck, connSendAck, c)
	}
}

// deliverApp forwards the application portion of newly in-order bytes
// [from, to) to OnData, excluding the TLS prefix.
func (c *Conn) deliverApp(from, to uint64, fin bool) {
	c.Stats.BytesDelivered += to - from
	appFrom := from
	if appFrom < c.tlsRecvTotal {
		appFrom = c.tlsRecvTotal
	}
	n := 0
	if to > appFrom {
		n = int(to - appFrom)
	}
	if (n > 0 || fin) && c.OnData != nil {
		c.OnData(n, fin)
	}
}

func (c *Conn) insertMsgKey(off uint64) {
	i := 0
	for i < len(c.msgsInOrder) && c.msgsInOrder[i] < off {
		i++
	}
	c.msgsInOrder = append(c.msgsInOrder, 0)
	copy(c.msgsInOrder[i+1:], c.msgsInOrder[i:])
	c.msgsInOrder[i] = off
}

// deliverSpan delivers the newly in-order bytes [from, to) interleaved
// with any application messages anchored inside: bytes before an anchor
// first, then the message, then the rest. The precise interleaving lets
// relays (PEPs) re-anchor messages on their second leg exactly.
func (c *Conn) deliverSpan(from, to uint64, fin bool) {
	for len(c.msgsInOrder) > 0 && c.msgsInOrder[0] < to {
		a := c.msgsInOrder[0]
		c.msgsInOrder = c.msgsInOrder[1:]
		msg := c.msgsIn[a]
		delete(c.msgsIn, a)
		if a > from {
			c.deliverApp(from, a, false)
			from = a
		}
		if c.OnMsg != nil {
			c.OnMsg(msg)
		}
	}
	c.deliverApp(from, to, fin)
}

func (c *Conn) autotune(newBytes uint64) {
	if c.cfg.MaxRcvWnd <= c.cfg.InitialRcvWnd {
		return
	}
	c.bytesSinceTune += newBytes
	if c.bytesSinceTune >= c.rcvWnd/2 {
		c.bytesSinceTune = 0
		if c.rcvWnd*2 <= c.cfg.MaxRcvWnd {
			c.rcvWnd *= 2
		} else {
			c.rcvWnd = c.cfg.MaxRcvWnd
		}
	}
}

func (c *Conn) sendAck() {
	if c.state != StateEstablished {
		return
	}
	c.segsSinceAck = 0
	c.ackTimer.Stop()
	seg := c.newSegment()
	seg.Flags, seg.Ack, seg.Wnd = FlagACK, c.ackValue(), c.advertisedWnd()
	seg.Sack = c.recvRanges.appendBlocks(seg.Sack, 8)
	if !c.lastRecvTSRetx {
		seg.Echo = c.lastRecvTS
	}
	c.send(seg)
}

// maybeFinish schedules teardown once both directions completed,
// lingering briefly (TIME_WAIT-style) so a retransmitted peer FIN can
// still be acknowledged.
func (c *Conn) maybeFinish() {
	if !c.finAcked || !c.finDelivered {
		return
	}
	c.sched.AfterFunc(3*time.Second, connTimeWait, c)
}

func (c *Conn) onTimeWait() {
	if c.state == StateEstablished {
		c.teardown()
	}
}

// Completed reports whether both directions finished cleanly (our FIN
// acknowledged and the peer's FIN delivered).
func (c *Conn) Completed() bool { return c.finAcked && c.finDelivered }

// Backlog returns bytes accepted for sending but not yet put on the
// wire — a relay's measure of how far its onward leg lags. In-flight
// bytes are excluded: they are progressing at the path's natural BDP.
func (c *Conn) Backlog() int {
	if c.sendEnd <= c.sndNxt {
		return 0
	}
	return int(c.sendEnd - c.sndNxt)
}

// ForceAck emits an immediate window-update ACK (relays call this as
// their backlog drains so a window-blocked peer resumes).
func (c *Conn) ForceAck() {
	if c.state == StateEstablished {
		c.sendAck()
	}
}

// Debug accessors used by tests and diagnostics.

// DebugUna returns snd.una.
func (c *Conn) DebugUna() uint64 { return c.sndUna }

// DebugNxt returns snd.nxt.
func (c *Conn) DebugNxt() uint64 { return c.sndNxt }

// DebugPipe returns the pipe estimate.
func (c *Conn) DebugPipe() int { return c.pipe }

// DebugPeerWnd returns the peer's advertised window.
func (c *Conn) DebugPeerWnd() uint64 { return c.peerWnd }

// DebugRetxQ returns the number of queued retransmission ranges.
func (c *Conn) DebugRetxQ() int { return len(c.retxQueue.ranges) }

// DebugSackedLen returns the number of sender-known SACK ranges.
func (c *Conn) DebugSackedLen() int { return len(c.sacked.ranges) }

// FinAcked reports whether our FIN was acknowledged (sender-side
// completion).
func (c *Conn) FinAcked() bool { return c.finAcked }

// FinReceived reports whether the peer's FIN was delivered in order
// (receiver-side completion).
func (c *Conn) FinReceived() bool { return c.finDelivered }

// Scheduler trampolines: package-level sim.EventFunc adapters so the
// per-segment timers (RTO re-arm, delayed ACK) and the rarer handshake
// and TIME_WAIT timers schedule without allocating a bound-method
// closure per arming.
func connRTO(arg any)      { arg.(*Conn).onRTO() }
func connSendAck(arg any)  { arg.(*Conn).sendAck() }
func connSynRetry(arg any) { arg.(*Conn).onSynRetry() }
func connTimeWait(arg any) { arg.(*Conn).onTimeWait() }
func connPaceSend(arg any) { arg.(*Conn).maybeSend() }
