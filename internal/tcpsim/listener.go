package tcpsim

import (
	"starlinkperf/internal/netem"
)

// Listener accepts TCP connections on a node port.
type Listener struct {
	node   *netem.Node
	port   uint16
	cfg    Config
	flows  map[flowKey]*Conn
	accept func(*Conn)
}

// Listen binds a TCP listener to node:port; accept runs for every new
// connection before any data is delivered.
func Listen(node *netem.Node, port uint16, cfg Config, accept func(*Conn)) *Listener {
	l := &Listener{
		node:   node,
		port:   port,
		cfg:    cfg,
		flows:  make(map[flowKey]*Conn),
		accept: accept,
	}
	node.Bind(netem.ProtoTCP, port, l.receive)
	return l
}

// Close unbinds the listener (existing connections keep running until
// they close; their packets stop being demuxed).
func (l *Listener) Close() { l.node.Unbind(netem.ProtoTCP, l.port) }

func (l *Listener) receive(pkt *netem.Packet) {
	key := keyOf(pkt)
	c := l.flows[key]
	if c == nil {
		seg, ok := pkt.Payload.(*Segment)
		if !ok || seg.Flags&FlagSYN == 0 || seg.Flags&FlagACK != 0 {
			return
		}
		c = NewConn(ConnParams{
			Sched:      l.node.Scheduler(),
			Transmit:   l.node.Send,
			Node:       l.node,
			LocalAddr:  l.node.Addr(),
			LocalPort:  l.port,
			RemoteAddr: pkt.Src,
			RemotePort: pkt.SrcPort,
			IsClient:   false,
			Config:     l.cfg,
		})
		l.flows[key] = c
		c.closeHook = func() { delete(l.flows, key) }
		if l.accept != nil {
			l.accept(c)
		}
	}
	c.HandleSegment(pkt)
}

// Dial opens a client connection from node to remote:port and starts the
// handshake. Each call binds a fresh ephemeral source port.
func Dial(node *netem.Node, remote netem.Addr, remotePort uint16, cfg Config) *Conn {
	sport := node.EphemeralPort(netem.ProtoTCP, 32768)

	c := NewConn(ConnParams{
		Sched:      node.Scheduler(),
		Transmit:   node.Send,
		Node:       node,
		LocalAddr:  node.Addr(),
		LocalPort:  sport,
		RemoteAddr: remote,
		RemotePort: remotePort,
		IsClient:   true,
		Config:     cfg,
	})
	node.Bind(netem.ProtoTCP, sport, c.HandleSegment)
	c.closeHook = func() { node.Unbind(netem.ProtoTCP, sport) }
	c.Start()
	return c
}
