package tcpsim

import (
	"math/rand/v2"
	"testing"
)

// TestByteRangesAgainstReference checks insert/covered/contiguousFrom/
// trimBelow against a brute-force bitmap model.
func TestByteRangesAgainstReference(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 200; trial++ {
		var b byteRanges
		const space = 400
		ref := make([]bool, space)
		for op := 0; op < 120; op++ {
			start := uint64(r.IntN(space - 1))
			end := start + uint64(1+r.IntN(40))
			if end > space {
				end = space
			}
			b.insert(start, end)
			for i := start; i < end; i++ {
				ref[i] = true
			}
		}
		// Invariants: sorted, disjoint, non-touching.
		for i, rg := range b.ranges {
			if rg.Start >= rg.End {
				t.Fatalf("trial %d: empty range %+v", trial, rg)
			}
			if i > 0 && rg.Start <= b.ranges[i-1].End {
				t.Fatalf("trial %d: ranges touch: %+v %+v", trial, b.ranges[i-1], rg)
			}
		}
		// covered() matches the bitmap for random probes.
		for probe := 0; probe < 100; probe++ {
			s := uint64(r.IntN(space - 1))
			e := s + uint64(1+r.IntN(30))
			if e > space {
				e = space
			}
			want := true
			for i := s; i < e; i++ {
				if !ref[i] {
					want = false
					break
				}
			}
			if got := b.covered(s, e); got != want {
				t.Fatalf("trial %d: covered(%d,%d)=%v want %v (ranges %v)", trial, s, e, got, want, b.ranges)
			}
		}
		// contiguousFrom from a random floor equals the bitmap run end.
		floor := uint64(r.IntN(space))
		wantEnd := floor
		for wantEnd < space && ref[wantEnd] {
			wantEnd++
		}
		cp := byteRanges{ranges: append([]SackBlock(nil), b.ranges...)}
		if got := cp.contiguousFrom(floor); got != wantEnd {
			t.Fatalf("trial %d: contiguousFrom(%d)=%d want %d", trial, floor, got, wantEnd)
		}
		// trimBelow drops everything under the floor and nothing above.
		tr := byteRanges{ranges: append([]SackBlock(nil), b.ranges...)}
		tr.trimBelow(floor)
		for i := uint64(0); i < space; i++ {
			want := ref[i] && i >= floor
			if got := tr.covered(i, i+1); got != want {
				t.Fatalf("trial %d: after trimBelow(%d), covered(%d)=%v want %v", trial, floor, i, got, want)
			}
		}
	}
}

func TestByteRangesMaxEnd(t *testing.T) {
	var b byteRanges
	if b.maxEnd(7) != 7 {
		t.Error("empty maxEnd should return floor")
	}
	b.insert(10, 20)
	b.insert(40, 50)
	if b.maxEnd(0) != 50 {
		t.Errorf("maxEnd = %d", b.maxEnd(0))
	}
	if b.maxEnd(60) != 60 {
		t.Errorf("maxEnd with higher floor = %d", b.maxEnd(60))
	}
}

func TestBlocksAscendingNearestAckFirst(t *testing.T) {
	var b byteRanges
	b.insert(100, 200)
	b.insert(300, 400)
	b.insert(500, 600)
	got := b.blocks(2)
	if len(got) != 2 || got[0] != (SackBlock{100, 200}) || got[1] != (SackBlock{300, 400}) {
		t.Fatalf("blocks = %v", got)
	}
	if n := len(b.blocks(10)); n != 3 {
		t.Fatalf("blocks(10) = %d entries", n)
	}
}
