// Package tcpsim implements a packet-level TCP model over the netem
// emulator: three-way handshake, an emulated TLS setup phase, cumulative
// ACKs with SACK-style scoreboarding, CUBIC congestion control (shared
// with the QUIC implementation via internal/cc), RTO with backoff,
// receive-window advertisement with Linux-style autotuning (131072 bytes
// growing to a 6 291 456-byte cap — the paper's testbed kernel defaults),
// and FIN teardown.
//
// Payloads are modeled as byte counts rather than byte contents: every
// observable the paper's TCP experiments report (throughput, setup time,
// queueing interaction, PEP behaviour) depends on segment sizes and
// sequence arithmetic, not payload bytes. Connections are constructed
// either through the Dial/Listen node glue or directly via NewConn with a
// custom transmit function — which is how the PEP middlebox splices
// spoofed connections into the path.
package tcpsim

import (
	"fmt"

	"starlinkperf/internal/netem"
	"starlinkperf/internal/sim"
)

// Flags is the TCP flag set.
type Flags uint8

// TCP flags.
const (
	FlagSYN Flags = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
)

// String implements fmt.Stringer.
func (f Flags) String() string {
	s := ""
	if f&FlagSYN != 0 {
		s += "S"
	}
	if f&FlagACK != 0 {
		s += "A"
	}
	if f&FlagFIN != 0 {
		s += "F"
	}
	if f&FlagRST != 0 {
		s += "R"
	}
	if s == "" {
		return "-"
	}
	return s
}

// SackBlock reports a received byte range [Start, End) above the
// cumulative ACK.
type SackBlock struct {
	Start, End uint64
}

// Segment is the TCP header + abstract payload carried as a netem packet
// payload.
type Segment struct {
	Flags Flags
	// Seq is the sequence number of the first payload byte (bytes, not
	// the wire's modulo-2^32 arithmetic — the emulator does not need
	// wraparound).
	Seq uint64
	// Len is the payload length in bytes.
	Len int
	// Ack is the cumulative acknowledgement (valid when FlagACK).
	Ack uint64
	// Sack carries selective acknowledgement blocks above Ack.
	Sack []SackBlock
	// Wnd is the advertised receive window in bytes.
	Wnd uint64
	// TS is the transmission timestamp (TSval); Echo returns the TS of
	// the segment being acknowledged (TSecr) for RTT sampling, zero when
	// the acked segment was a retransmission (Karn's rule).
	TS   sim.Time
	Echo sim.Time
	// Retx marks retransmitted payload.
	Retx bool
	// Msgs carries application messages anchored at stream offsets
	// inside this segment's payload (see Conn.WriteMsg).
	Msgs []AppMsg

	// Pool bookkeeping: owner is the connection whose freelist the segment
	// returns to (nil for literals, which are never recycled); pooled
	// guards double release. The receiver copies everything it needs out
	// of a delivered segment, so the datapath can recycle it at the
	// packet's terminal point via ReleasePayload.
	owner  *Conn
	pooled bool
}

// ReleasePayload implements netem.PayloadReleaser: the segment returns to
// its owning connection's freelist, keeping the Sack and Msgs backing
// arrays. Foreign (owner-nil) or already-pooled segments are inert.
func (s *Segment) ReleasePayload() {
	c := s.owner
	if c == nil || s.pooled {
		return
	}
	sack := s.Sack[:0]
	msgs := s.Msgs[:0]
	for i := range s.Msgs {
		s.Msgs[i] = AppMsg{} // drop payload references so the GC can collect them
	}
	*s = Segment{owner: c, pooled: true, Sack: sack, Msgs: msgs}
	c.segFree = append(c.segFree, s)
}

// AppMsg is an application message anchored at a stream offset. Payloads
// are modeled as byte counts, so request/response protocols attach their
// semantic content (an object request, a replay command) to the first
// byte of the write that carries them.
type AppMsg struct {
	Off uint64
	Msg any
}

// String implements fmt.Stringer.
func (s *Segment) String() string {
	return fmt.Sprintf("tcp{%v seq=%d len=%d ack=%d wnd=%d}", s.Flags, s.Seq, s.Len, s.Ack, s.Wnd)
}

// Wire overheads: IPv4 (20) + TCP (20) + timestamp/SACK options (~12).
const (
	headerOverhead = 52
	synSize        = 60
	ackSize        = headerOverhead
)

// wireSize returns the on-the-wire size of the segment.
func (s *Segment) wireSize() int {
	if s.Flags&FlagSYN != 0 {
		return synSize
	}
	return headerOverhead + s.Len
}

// flowKey identifies a TCP flow by its 4-tuple as seen at a given point.
type flowKey struct {
	srcAddr netem.Addr
	srcPort uint16
	dstAddr netem.Addr
	dstPort uint16
}

func (k flowKey) reverse() flowKey {
	return flowKey{srcAddr: k.dstAddr, srcPort: k.dstPort, dstAddr: k.srcAddr, dstPort: k.srcPort}
}

func keyOf(pkt *netem.Packet) flowKey {
	return flowKey{srcAddr: pkt.Src, srcPort: pkt.SrcPort, dstAddr: pkt.Dst, dstPort: pkt.DstPort}
}

// byteRanges tracks received byte ranges [start, end) above a cumulative
// floor, merging as they become contiguous.
type byteRanges struct {
	ranges []SackBlock // sorted by Start, disjoint, non-touching
}

// insert adds [start, end).
func (b *byteRanges) insert(start, end uint64) {
	if end <= start {
		return
	}
	// A fresh slice is required: writing in place can clobber unread
	// elements when the new range is placed mid-slice.
	out := make([]SackBlock, 0, len(b.ranges)+1)
	placed := false
	for _, r := range b.ranges {
		switch {
		case r.End < start: // strictly before, no touch
			out = append(out, r)
		case end < r.Start: // strictly after, no touch
			if !placed {
				out = append(out, SackBlock{start, end})
				placed = true
			}
			out = append(out, r)
		default: // overlap or touch: merge
			if r.Start < start {
				start = r.Start
			}
			if r.End > end {
				end = r.End
			}
		}
	}
	if !placed {
		out = append(out, SackBlock{start, end})
	}
	b.ranges = out
}

// contiguousFrom returns the end of the contiguous region starting at
// floor, removing fully consumed ranges.
func (b *byteRanges) contiguousFrom(floor uint64) uint64 {
	for len(b.ranges) > 0 && b.ranges[0].Start <= floor {
		if b.ranges[0].End > floor {
			floor = b.ranges[0].End
		}
		b.ranges = b.ranges[1:]
	}
	return floor
}

// trimBelow clips away everything below floor, preserving coverage at and
// above it (unlike contiguousFrom, which consumes).
func (b *byteRanges) trimBelow(floor uint64) {
	out := b.ranges[:0]
	for _, r := range b.ranges {
		if r.End <= floor {
			continue
		}
		if r.Start < floor {
			r.Start = floor
		}
		out = append(out, r)
	}
	b.ranges = out
}

// covered reports whether [start, end) is fully contained in the set.
func (b *byteRanges) covered(start, end uint64) bool {
	for _, r := range b.ranges {
		if start >= r.Start && end <= r.End {
			return true
		}
	}
	return false
}

// blocks returns up to n ranges in ascending order, nearest the
// cumulative ACK first. Wire TCP rotates 3 most-recent blocks and lets
// the sender accumulate coverage over many ACKs; reporting the
// lowest-lying blocks directly converges to the same sender knowledge
// with far fewer ACKs, which is what matters for the emulation.
func (b *byteRanges) blocks(n int) []SackBlock {
	return b.appendBlocks(nil, n)
}

// appendBlocks appends up to n lowest-lying ranges to dst (see blocks),
// reusing its backing array.
func (b *byteRanges) appendBlocks(dst []SackBlock, n int) []SackBlock {
	if n > len(b.ranges) {
		n = len(b.ranges)
	}
	return append(dst[:0], b.ranges[:n]...)
}

// maxEnd returns the highest received byte, or floor when empty.
func (b *byteRanges) maxEnd(floor uint64) uint64 {
	if len(b.ranges) == 0 {
		return floor
	}
	if e := b.ranges[len(b.ranges)-1].End; e > floor {
		return e
	}
	return floor
}
