package tcpsim

import (
	"testing"
	"time"

	"starlinkperf/internal/netem"
	"starlinkperf/internal/sim"
)

func pairNet(t *testing.T, cfg netem.LinkConfig) (*sim.Scheduler, *netem.Node, *netem.Node) {
	t.Helper()
	s := sim.NewScheduler(31)
	nw := netem.New(s)
	a := nw.NewNode("client", netem.MustParseAddr("10.0.0.1"))
	b := nw.NewNode("server", netem.MustParseAddr("10.0.0.2"))
	ab, ba := nw.Connect(a, b, cfg)
	a.AddRoute(b.Addr(), ab)
	b.AddRoute(a.Addr(), ba)
	return s, a, b
}

func TestByteRangesInsertMerge(t *testing.T) {
	var b byteRanges
	b.insert(10, 20)
	b.insert(30, 40)
	b.insert(20, 30) // bridges
	if len(b.ranges) != 1 || b.ranges[0] != (SackBlock{10, 40}) {
		t.Fatalf("ranges = %v", b.ranges)
	}
	b.insert(0, 5)
	if len(b.ranges) != 2 {
		t.Fatalf("ranges = %v", b.ranges)
	}
	if !b.covered(12, 35) || b.covered(4, 11) {
		t.Error("covered() wrong")
	}
	if got := b.contiguousFrom(0); got != 5 {
		t.Errorf("contiguousFrom(0) = %d", got)
	}
	if got := b.contiguousFrom(10); got != 40 {
		t.Errorf("contiguousFrom(10) = %d", got)
	}
	if len(b.ranges) != 0 {
		t.Errorf("consumed ranges remain: %v", b.ranges)
	}
}

func TestByteRangesOverlaps(t *testing.T) {
	var b byteRanges
	b.insert(0, 100)
	b.insert(50, 60) // fully inside
	if len(b.ranges) != 1 || b.ranges[0] != (SackBlock{0, 100}) {
		t.Fatalf("ranges = %v", b.ranges)
	}
	b.insert(90, 150) // extends
	if b.ranges[0] != (SackBlock{0, 150}) {
		t.Fatalf("ranges = %v", b.ranges)
	}
	b.insert(200, 200) // empty, ignored
	if len(b.ranges) != 1 {
		t.Fatalf("empty insert changed ranges: %v", b.ranges)
	}
}

func TestHandshakeSetupTimePlainTCP(t *testing.T) {
	s, a, b := pairNet(t, netem.LinkConfig{Delay: netem.ConstantDelay(50 * time.Millisecond)})
	cfg := DefaultConfig()
	cfg.TLSRounds = 0
	Listen(b, 80, cfg, nil)
	c := Dial(a, b.Addr(), 80, cfg)
	s.RunFor(5 * time.Second)
	if !c.Ready() {
		t.Fatal("not established")
	}
	// Plain TCP: client ready after 1 RTT (SYN + SYN-ACK).
	if got := c.SetupTime(); got != 100*time.Millisecond {
		t.Errorf("setup = %v, want 100ms", got)
	}
}

func TestSetupTimeTLS12IsThreeRTTs(t *testing.T) {
	// The paper: SatCom connection setup (incl. TLS) averages ~2030ms at
	// ~600ms RTT; Starlink ~167ms at ~50ms RTT — i.e. just over 3 RTTs.
	s, a, b := pairNet(t, netem.LinkConfig{Delay: netem.ConstantDelay(50 * time.Millisecond)})
	cfg := DefaultConfig() // TLS 1.2
	Listen(b, 443, cfg, nil)
	c := Dial(a, b.Addr(), 443, cfg)
	s.RunFor(10 * time.Second)
	if !c.Ready() {
		t.Fatal("not established")
	}
	setup := c.SetupTime()
	if setup < 300*time.Millisecond || setup > 360*time.Millisecond {
		t.Errorf("TLS1.2 setup = %v, want ~3xRTT + processing (300-360ms)", setup)
	}
}

func TestSetupTimeTLS13IsTwoRTTs(t *testing.T) {
	s, a, b := pairNet(t, netem.LinkConfig{Delay: netem.ConstantDelay(50 * time.Millisecond)})
	cfg := DefaultConfig()
	cfg.TLSRounds = 1
	Listen(b, 443, cfg, nil)
	c := Dial(a, b.Addr(), 443, cfg)
	s.RunFor(10 * time.Second)
	if !c.Ready() {
		t.Fatal("not established")
	}
	setup := c.SetupTime()
	if setup < 200*time.Millisecond || setup > 260*time.Millisecond {
		t.Errorf("TLS1.3 setup = %v, want ~2xRTT + processing", setup)
	}
}

func TestBulkTransferCleanLink(t *testing.T) {
	s, a, b := pairNet(t, netem.LinkConfig{
		RateBps: 50e6, Delay: netem.ConstantDelay(20 * time.Millisecond), QueueBytes: 256 << 10,
	})
	cfg := DefaultConfig()
	cfg.TLSRounds = 0

	received := 0
	finSeen := false
	Listen(b, 80, cfg, func(sc *Conn) {
		sc.OnData = func(n int, fin bool) {
			received += n
			if fin {
				finSeen = true
			}
		}
	})
	const total = 4 << 20
	c := Dial(a, b.Addr(), 80, cfg)
	c.OnEstablished = func() {
		c.Write(total)
		c.Close()
	}
	s.RunFor(60 * time.Second)

	if received != total || !finSeen {
		t.Fatalf("received %d/%d fin=%v", received, total, finSeen)
	}
	if !c.FinAcked() {
		t.Error("sender FIN not acked")
	}
	// Throughput sanity: 4MB over 50Mbit/s ≈ 0.7s + slow start; the
	// transfer must finish well under 5s.
	if c.ReadyAt == 0 {
		t.Error("ReadyAt not stamped")
	}
}

func TestBulkTransferThroughputApproachesLinkRate(t *testing.T) {
	s, a, b := pairNet(t, netem.LinkConfig{
		RateBps: 20e6, Delay: netem.ConstantDelay(25 * time.Millisecond), QueueBytes: 512 << 10,
	})
	cfg := DefaultConfig()
	cfg.TLSRounds = 0
	received := 0
	var doneAt sim.Time
	Listen(b, 80, cfg, func(sc *Conn) {
		sc.OnData = func(n int, fin bool) {
			received += n
			if fin {
				doneAt = s.Now()
			}
		}
	})
	const total = 10 << 20
	c := Dial(a, b.Addr(), 80, cfg)
	var startAt sim.Time
	c.OnEstablished = func() {
		startAt = s.Now()
		c.Write(total)
		c.Close()
	}
	s.RunFor(120 * time.Second)
	if received != total {
		t.Fatalf("received %d/%d", received, total)
	}
	dur := doneAt.Sub(startAt).Seconds()
	gbps := float64(total) * 8 / dur
	if gbps < 14e6 {
		t.Errorf("goodput %.1f Mbit/s, want >14 on a 20 Mbit/s link", gbps/1e6)
	}
}

func TestTransferSurvivesLoss(t *testing.T) {
	s := sim.NewScheduler(37)
	nw := netem.New(s)
	a := nw.NewNode("client", netem.MustParseAddr("10.0.0.1"))
	b := nw.NewNode("server", netem.MustParseAddr("10.0.0.2"))
	ab := nw.AddLink(a, b, netem.LinkConfig{
		RateBps: 20e6, Delay: netem.ConstantDelay(20 * time.Millisecond),
		Loss: &netem.BernoulliLoss{P: 0.02, Rng: s.RNG().Stream("l")},
	})
	ba := nw.AddLink(b, a, netem.LinkConfig{RateBps: 20e6, Delay: netem.ConstantDelay(20 * time.Millisecond)})
	a.AddRoute(b.Addr(), ab)
	b.AddRoute(a.Addr(), ba)

	cfg := DefaultConfig()
	cfg.TLSRounds = 0
	received := 0
	fin := false
	Listen(b, 80, cfg, func(sc *Conn) {
		sc.OnData = func(n int, f bool) {
			received += n
			if f {
				fin = true
			}
		}
	})
	const total = 2 << 20
	c := Dial(a, b.Addr(), 80, cfg)
	c.OnEstablished = func() {
		c.Write(total)
		c.Close()
	}
	s.RunFor(120 * time.Second)
	if received != total || !fin {
		t.Fatalf("received %d/%d fin=%v", received, total, fin)
	}
	if c.Stats.FastRetransmits == 0 && c.Stats.RTOs == 0 {
		t.Error("no recovery events on a lossy link")
	}
	if c.Stats.BytesRetx == 0 {
		t.Error("no retransmitted bytes on a lossy link")
	}
}

func TestReceiveWindowLimitsThroughputOnHighBDP(t *testing.T) {
	// GEO-like path: 500ms RTT, 100 Mbit/s. BDP = 6.25 MB > max rwnd
	// 6 MB, so the e2e transfer cannot exceed rwnd/RTT ≈ 96 Mbit/s. With
	// an artificially small 512 kB rwnd it must cap near 8 Mbit/s — the
	// mechanism PEPs exist to fix.
	run := func(maxWnd uint64) float64 {
		s, a, b := pairNet(t, netem.LinkConfig{
			RateBps: 100e6, Delay: netem.ConstantDelay(250 * time.Millisecond), QueueBytes: 4 << 20,
		})
		cfg := DefaultConfig()
		cfg.TLSRounds = 0
		cfg.InitialRcvWnd = 128 << 10
		cfg.MaxRcvWnd = maxWnd
		received := 0
		var start, end sim.Time
		Listen(b, 80, cfg, func(sc *Conn) {
			sc.OnData = func(n int, f bool) {
				received += n
				if f {
					end = s.Now()
				}
			}
		})
		const total = 8 << 20
		c := Dial(a, b.Addr(), 80, cfg)
		c.OnEstablished = func() {
			start = s.Now()
			c.Write(total)
			c.Close()
		}
		s.RunFor(300 * time.Second)
		if received != total {
			t.Fatalf("rwnd=%d: received %d/%d", maxWnd, received, total)
		}
		return float64(total) * 8 / end.Sub(start).Seconds()
	}
	small := run(512 << 10)
	big := run(6 << 20)
	if small >= big {
		t.Errorf("small rwnd %.1f Mbit/s should be slower than big %.1f", small/1e6, big/1e6)
	}
	if small > 10e6 {
		t.Errorf("512kB rwnd at 500ms RTT gave %.1f Mbit/s, want <10", small/1e6)
	}
}

func TestParallelConnectionsShareBottleneck(t *testing.T) {
	s, a, b := pairNet(t, netem.LinkConfig{
		RateBps: 20e6, Delay: netem.ConstantDelay(25 * time.Millisecond), QueueBytes: 256 << 10,
	})
	cfg := DefaultConfig()
	cfg.TLSRounds = 0
	const n = 4
	const each = 2 << 20
	perConn := map[*Conn]int{}
	fins := 0
	Listen(b, 81, cfg, func(sc *Conn) {
		sc.OnData = func(nn int, f bool) {
			perConn[sc] += nn
			if f {
				fins++
			}
		}
	})
	for i := 0; i < n; i++ {
		c := Dial(a, b.Addr(), 81, cfg)
		c.OnEstablished = func() {
			c.Write(each)
			c.Close()
		}
	}
	s.RunFor(60 * time.Second)
	if fins != n {
		t.Fatalf("%d/%d transfers finished", fins, n)
	}
	total := 0
	for _, v := range perConn {
		total += v
	}
	if total != n*each {
		t.Fatalf("received %d/%d", total, n*each)
	}
}

func TestSYNRetransmissionSurvivesOutage(t *testing.T) {
	s := sim.NewScheduler(41)
	nw := netem.New(s)
	a := nw.NewNode("client", netem.MustParseAddr("10.0.0.1"))
	b := nw.NewNode("server", netem.MustParseAddr("10.0.0.2"))
	down := func(at sim.Time) bool { return at < sim.Time(1500*time.Millisecond) }
	ab, ba := nw.Connect(a, b, netem.LinkConfig{Delay: netem.ConstantDelay(10 * time.Millisecond), Down: down})
	a.AddRoute(b.Addr(), ab)
	b.AddRoute(a.Addr(), ba)
	cfg := DefaultConfig()
	cfg.TLSRounds = 0
	Listen(b, 80, cfg, nil)
	c := Dial(a, b.Addr(), 80, cfg)
	s.RunFor(30 * time.Second)
	if !c.Ready() {
		t.Fatal("handshake never completed after outage")
	}
	if c.Stats.RTOs == 0 {
		t.Error("expected SYN retransmissions")
	}
}

func TestServerPush(t *testing.T) {
	// Data flowing server->client (the download direction of web and
	// speedtest workloads).
	s, a, b := pairNet(t, netem.LinkConfig{RateBps: 20e6, Delay: netem.ConstantDelay(20 * time.Millisecond)})
	cfg := DefaultConfig()
	cfg.TLSRounds = 1
	received := 0
	fin := false
	Listen(b, 443, cfg, func(sc *Conn) {
		sc.OnEstablished = func() {
			sc.Write(500 << 10)
			sc.Close()
		}
	})
	c := Dial(a, b.Addr(), 443, cfg)
	c.OnData = func(n int, f bool) {
		received += n
		if f {
			fin = true
		}
	}
	s.RunFor(30 * time.Second)
	if received != 500<<10 || !fin {
		t.Fatalf("client received %d fin=%v", received, fin)
	}
}

func TestAbortSendsRST(t *testing.T) {
	s, a, b := pairNet(t, netem.LinkConfig{Delay: netem.ConstantDelay(5 * time.Millisecond)})
	cfg := DefaultConfig()
	cfg.TLSRounds = 0
	var srv *Conn
	Listen(b, 80, cfg, func(sc *Conn) { srv = sc })
	c := Dial(a, b.Addr(), 80, cfg)
	c.OnEstablished = func() { c.Abort() }
	s.RunFor(5 * time.Second)
	if c.State() != StateClosed {
		t.Error("client not closed after abort")
	}
	if srv == nil || srv.State() != StateClosed {
		t.Error("server did not tear down on RST")
	}
}

func TestWriteMsgDelivery(t *testing.T) {
	s, a, b := pairNet(t, netem.LinkConfig{RateBps: 20e6, Delay: netem.ConstantDelay(10 * time.Millisecond)})
	cfg := DefaultConfig()
	cfg.TLSRounds = 1
	type req struct{ ID, Size int }
	var gotMsgs []req
	var gotBytes []int
	Listen(b, 443, cfg, func(sc *Conn) {
		sc.OnMsg = func(m any) { gotMsgs = append(gotMsgs, m.(req)) }
		sc.OnData = func(n int, fin bool) { gotBytes = append(gotBytes, n) }
	})
	c := Dial(a, b.Addr(), 443, cfg)
	c.OnEstablished = func() {
		c.WriteMsg(300, req{ID: 1, Size: 5000})
		c.WriteMsg(300, req{ID: 2, Size: 7000})
		c.Write(1000)
	}
	s.RunFor(10 * time.Second)
	if len(gotMsgs) != 2 || gotMsgs[0].ID != 1 || gotMsgs[1].ID != 2 {
		t.Fatalf("msgs = %+v", gotMsgs)
	}
	total := 0
	for _, n := range gotBytes {
		total += n
	}
	if total != 1600 {
		t.Fatalf("delivered %d bytes, want 1600", total)
	}
}

func TestWriteMsgSurvivesLoss(t *testing.T) {
	s := sim.NewScheduler(43)
	nw := netem.New(s)
	a := nw.NewNode("client", netem.MustParseAddr("10.0.0.1"))
	b := nw.NewNode("server", netem.MustParseAddr("10.0.0.2"))
	ab := nw.AddLink(a, b, netem.LinkConfig{
		RateBps: 20e6, Delay: netem.ConstantDelay(10 * time.Millisecond),
		Loss: &netem.BernoulliLoss{P: 0.05, Rng: s.RNG().Stream("l")},
	})
	ba := nw.AddLink(b, a, netem.LinkConfig{RateBps: 20e6, Delay: netem.ConstantDelay(10 * time.Millisecond)})
	a.AddRoute(b.Addr(), ab)
	b.AddRoute(a.Addr(), ba)
	cfg := DefaultConfig()
	cfg.TLSRounds = 0
	var got []int
	Listen(b, 80, cfg, func(sc *Conn) {
		sc.OnMsg = func(m any) { got = append(got, m.(int)) }
	})
	c := Dial(a, b.Addr(), 80, cfg)
	c.OnEstablished = func() {
		for i := 0; i < 50; i++ {
			c.WriteMsg(2000, i)
		}
	}
	s.RunFor(60 * time.Second)
	if len(got) != 50 {
		t.Fatalf("got %d msgs, want 50", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("msgs out of order at %d: %v", i, v)
		}
	}
}
