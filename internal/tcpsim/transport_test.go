package tcpsim

import (
	"fmt"
	"testing"
	"time"

	"starlinkperf/internal/cc"
	"starlinkperf/internal/netem"
	"starlinkperf/internal/sim"
)

// TestTCPHandoverReorderingNoSpuriousRetransmit: a route flip onto a
// lower-latency parallel path behind a shared bottleneck reorders
// in-flight segments by one delay quantum (~2 MSS at the bottleneck
// rate). The RFC 6675 three-segment SACK threshold and the RACK-style
// time threshold must both absorb it: zero fast retransmits, zero RTOs,
// zero retransmitted bytes on a loss-free network.
func TestTCPHandoverReorderingNoSpuriousRetransmit(t *testing.T) {
	const total = 1 << 20
	for _, seed := range []uint64{7, 23, 101} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := sim.NewScheduler(seed)
			nw := netem.New(s)
			a := nw.NewNode("client", netem.MustParseAddr("10.0.0.1"))
			m := nw.NewNode("pop", netem.MustParseAddr("10.0.0.254"))
			b := nw.NewNode("server", netem.MustParseAddr("10.0.0.2"))
			// Same shape as the QUIC suite: bottleneck first, then two
			// delay-only paths 1 ms apart so a slow→fast handover reorders
			// by propagation only (at 20 Mbps ≈ 2 segments, inside the
			// 3-segment SACK threshold).
			am := nw.AddLink(a, m, netem.LinkConfig{RateBps: 20e6})
			slowP := nw.AddLink(m, b, netem.LinkConfig{Delay: netem.ConstantDelay(6 * time.Millisecond)})
			fastP := nw.AddLink(m, b, netem.LinkConfig{Delay: netem.ConstantDelay(5 * time.Millisecond)})
			bm := nw.AddLink(b, m, netem.LinkConfig{Delay: netem.ConstantDelay(5 * time.Millisecond)})
			ma := nw.AddLink(m, a, netem.LinkConfig{RateBps: 20e6})
			a.AddRoute(b.Addr(), am)
			m.AddRoute(b.Addr(), slowP)
			b.AddRoute(a.Addr(), bm)
			m.AddRoute(a.Addr(), ma)

			cfg := DefaultConfig()
			cfg.TLSRounds = 0
			received := 0
			Listen(b, 80, cfg, func(c *Conn) {
				c.OnData = func(n int, fin bool) { received += n }
			})
			c := Dial(a, b.Addr(), 80, cfg)
			c.OnEstablished = func() {
				c.Write(total)
				c.Close()
			}
			s.After(200*time.Millisecond, func() { m.AddRoute(b.Addr(), fastP) })
			s.After(400*time.Millisecond, func() { m.AddRoute(b.Addr(), slowP) })
			s.RunFor(30 * time.Second)

			if received != total {
				t.Fatalf("transfer incomplete: %d/%d", received, total)
			}
			if c.Stats.FastRetransmits != 0 {
				t.Errorf("%d spurious fast retransmits after reordering handover", c.Stats.FastRetransmits)
			}
			if c.Stats.RTOs != 0 {
				t.Errorf("%d spurious RTOs after reordering handover", c.Stats.RTOs)
			}
			if c.Stats.BytesRetx != 0 {
				t.Errorf("%d bytes retransmitted on a loss-free network", c.Stats.BytesRetx)
			}
		})
	}
}

// departureTap records when payload-bearing TCP segments leave a node.
type departureTap struct{ times []sim.Time }

func (d *departureTap) ProcessEgress(n *netem.Node, pkt *netem.Packet) bool {
	if seg, ok := pkt.Payload.(*Segment); ok && seg.Len > 0 {
		d.times = append(d.times, n.Scheduler().Now())
	}
	return true
}

func (d *departureTap) Process(n *netem.Node, pkt *netem.Packet) bool { return true }

// maxBurstRun returns the longest run of departures spaced closer than
// gap apart.
func maxBurstRun(times []sim.Time, gap time.Duration) int {
	longest, run := 0, 1
	for i := 1; i < len(times); i++ {
		if times[i].Sub(times[i-1]) < gap {
			run++
		} else {
			run = 1
		}
		if run > longest {
			longest = run
		}
	}
	return longest
}

// TestTCPPacingSpacesDepartures: with Config.EnablePacing the wire trace
// shows no back-to-back run longer than the burst allowance; unpaced, the
// whole window leaves the node in one burst. This pins the profile
// attribute end to end — tcpsim honors the same pacer QUIC does.
func TestTCPPacingSpacesDepartures(t *testing.T) {
	run := func(pacing bool) int {
		s := sim.NewScheduler(13)
		nw := netem.New(s)
		a := nw.NewNode("client", netem.MustParseAddr("10.0.0.1"))
		b := nw.NewNode("server", netem.MustParseAddr("10.0.0.2"))
		ab, ba := nw.Connect(a, b, netem.LinkConfig{
			RateBps: 10e6,
			Delay:   netem.ConstantDelay(50 * time.Millisecond),
		})
		a.AddRoute(b.Addr(), ab)
		b.AddRoute(a.Addr(), ba)
		tap := &departureTap{}
		a.AttachDevice(tap)

		cfg := DefaultConfig()
		cfg.TLSRounds = 0
		// Fixed window keeps the pacing rate (gain x cwnd/SRTT) constant,
		// so the expected spacing is unambiguous.
		cfg.NewCC = func(mss int) cc.CongestionController { return cc.NewFixed(64 << 10) }
		cfg.EnablePacing = pacing
		Listen(b, 80, DefaultConfig(), nil)
		c := Dial(a, b.Addr(), 80, cfg)
		c.OnEstablished = func() {
			c.Write(300 << 10)
			c.Close()
		}
		s.RunFor(20 * time.Second)
		return maxBurstRun(tap.times, 100*time.Microsecond)
	}

	unpaced := run(false)
	paced := run(true)
	if paced > cc.DefaultBurstPackets {
		t.Errorf("paced run of %d back-to-back segments exceeds the %d-packet burst allowance",
			paced, cc.DefaultBurstPackets)
	}
	if unpaced <= cc.DefaultBurstPackets {
		t.Errorf("unpaced max run %d suspiciously small — the baseline burst is gone", unpaced)
	}
}
