package trace

import (
	"encoding/binary"
	"io"
)

// PcapWriter emits captures in the classic libpcap file format
// (https://wiki.wireshark.org/Development/LibpcapFileFormat) so external
// tooling (tcpdump, Wireshark, tshark) can inspect simulated transfers.
// Packets are written with LINKTYPE_RAW (101); the payload is a minimal
// synthesized byte image of the packet.
type PcapWriter struct {
	w     io.Writer
	wrote bool
	// Packets counts records written.
	Packets uint64
}

const (
	pcapMagic       = 0xa1b2c3d4
	pcapVersionMaj  = 2
	pcapVersionMin  = 4
	pcapSnapLen     = 65535
	pcapLinktypeRaw = 101
)

// NewPcapWriter wraps w.
func NewPcapWriter(w io.Writer) *PcapWriter { return &PcapWriter{w: w} }

func (p *PcapWriter) writeHeader() error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:], pcapVersionMaj)
	binary.LittleEndian.PutUint16(hdr[6:], pcapVersionMin)
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:], pcapLinktypeRaw)
	_, err := p.w.Write(hdr[:])
	return err
}

// WritePacket writes one record; data may be truncated to the snap
// length, origLen is the original wire size.
func (p *PcapWriter) WritePacket(tsNanos int64, data []byte, origLen int) error {
	if !p.wrote {
		if err := p.writeHeader(); err != nil {
			return err
		}
		p.wrote = true
	}
	if len(data) > pcapSnapLen {
		data = data[:pcapSnapLen]
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(tsNanos/1e9))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(tsNanos%1e9/1e3))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(origLen))
	if _, err := p.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := p.w.Write(data)
	if err == nil {
		p.Packets++
	}
	return err
}

// WriteCapture dumps every record of a capture (receive side) using a
// synthesized payload carrying the packet number, useful for eyeballing
// gaps in external tools.
func (p *PcapWriter) WriteCapture(c *Capture) error {
	for _, rec := range c.Received {
		var payload [12]byte
		binary.BigEndian.PutUint64(payload[0:], rec.PN)
		binary.BigEndian.PutUint32(payload[8:], uint32(rec.Size))
		if err := p.WritePacket(int64(rec.At), payload[:], rec.Size); err != nil {
			return err
		}
	}
	return nil
}
