// Package trace implements the paper's capture-based analysis: it records
// per-packet events from QUIC connections, infers losses from packet
// number gaps (valid because the transport never skips packet numbers and
// retransmits under fresh numbers), groups consecutive losses into bursts,
// measures loss-event durations from inter-arrival gaps at the receiver,
// and can export captures in the libpcap file format.
package trace

import (
	"time"

	"starlinkperf/internal/quic"
	"starlinkperf/internal/sim"
)

// PacketRecord is one captured packet event.
type PacketRecord struct {
	At   sim.Time
	PN   uint64
	Size int
}

// Capture accumulates packet events on one side of a connection.
type Capture struct {
	// Received holds receiver-side events in arrival order.
	Received []PacketRecord
	// Sent holds sender-side events in send order.
	Sent []PacketRecord
}

// AttachReceiver hooks the capture to a connection's receive path.
func (c *Capture) AttachReceiver(conn *quic.Connection) {
	conn.TraceReceived = func(at sim.Time, pn uint64, size int) {
		c.Received = append(c.Received, PacketRecord{At: at, PN: pn, Size: size})
	}
}

// AttachSender hooks the capture to a connection's send path.
func (c *Capture) AttachSender(conn *quic.Connection) {
	conn.TraceSent = func(at sim.Time, pn uint64, size int, _ bool) {
		c.Sent = append(c.Sent, PacketRecord{At: at, PN: pn, Size: size})
	}
}

// LossEvent is a run of consecutively lost packet numbers, as inferred at
// the receiver.
type LossEvent struct {
	// FirstPN is the first missing packet number.
	FirstPN uint64
	// Burst is the number of consecutively missing packet numbers.
	Burst int
	// Start is the arrival time of the last packet before the gap; End
	// the arrival of the first packet after it. Duration = End - Start,
	// the paper's loss-event duration.
	Start, End sim.Time
}

// Duration returns the loss-event duration.
func (e LossEvent) Duration() time.Duration { return e.End.Sub(e.Start) }

// LossReport summarizes the losses of one direction of one transfer.
type LossReport struct {
	PacketsSent     uint64 // highest PN observed + 1 (sender view when available)
	PacketsReceived uint64
	PacketsLost     uint64
	Events          []LossEvent
}

// LossRate returns lost/sent.
func (r LossReport) LossRate() float64 {
	if r.PacketsSent == 0 {
		return 0
	}
	return float64(r.PacketsLost) / float64(r.PacketsSent)
}

// BurstLengths returns the burst length of every loss event.
func (r LossReport) BurstLengths() []int {
	out := make([]int, len(r.Events))
	for i, e := range r.Events {
		out[i] = e.Burst
	}
	return out
}

// EventDurations returns the duration of every loss event in seconds.
func (r LossReport) EventDurations() []float64 {
	out := make([]float64, len(r.Events))
	for i, e := range r.Events {
		out[i] = e.Duration().Seconds()
	}
	return out
}

// AnalyzeLosses reconstructs loss events from receiver-side arrivals.
//
// The transport sends packet numbers 0..N with no gaps and arrivals are
// in increasing PN order on FIFO paths, so every jump in consecutive
// arrivals is a loss burst. Packets missing after the final arrival
// cannot be distinguished from "still in flight" and are excluded, like
// in the paper's methodology.
func AnalyzeLosses(received []PacketRecord) LossReport {
	var rep LossReport
	rep.PacketsReceived = uint64(len(received))
	if len(received) == 0 {
		return rep
	}
	// Arrival order can contain slight PN inversions if the path
	// reorders; process in arrival order tracking the highest seen.
	highest := received[0].PN
	prev := received[0]
	// Count missing before the first arrival (lost handshake packets).
	if received[0].PN > 0 {
		rep.Events = append(rep.Events, LossEvent{
			FirstPN: 0,
			Burst:   int(received[0].PN),
			Start:   received[0].At, // no earlier arrival exists
			End:     received[0].At,
		})
		rep.PacketsLost += received[0].PN
	}
	for _, rec := range received[1:] {
		if rec.PN > highest {
			if rec.PN > prev.PN+1 && prev.PN == highest {
				burst := rec.PN - prev.PN - 1
				rep.Events = append(rep.Events, LossEvent{
					FirstPN: prev.PN + 1,
					Burst:   int(burst),
					Start:   prev.At,
					End:     rec.At,
				})
				rep.PacketsLost += burst
			}
			highest = rec.PN
		}
		prev = rec
	}
	rep.PacketsSent = highest + 1
	return rep
}

// AnalyzeSenderView computes the loss report from sender stats: the set
// of packets the peer eventually acknowledged is not directly visible, so
// this uses the connection's receiver-range view exposed by the peer —
// used for upload loss accounting, where the paper reads ACK frames at
// the server.
func AnalyzeSenderView(sent uint64, peerRanges []quic.AckRange) LossReport {
	var rep LossReport
	rep.PacketsSent = sent
	var got uint64
	next := uint64(0)
	for _, r := range peerRanges {
		got += r.Largest - r.Smallest + 1
		if r.Smallest > next {
			rep.Events = append(rep.Events, LossEvent{
				FirstPN: next,
				Burst:   int(r.Smallest - next),
			})
		}
		next = r.Largest + 1
	}
	rep.PacketsReceived = got
	if sent > got {
		rep.PacketsLost = sent - got
	}
	return rep
}

// RTTSample is one acknowledged-packet RTT observation.
type RTTSample struct {
	At  sim.Time
	RTT time.Duration
}

// RTTRecorder collects the per-ACK RTT samples the paper's Figure 3 uses.
type RTTRecorder struct {
	Samples []RTTSample
}

// Attach hooks the recorder to a connection.
func (r *RTTRecorder) Attach(conn *quic.Connection) {
	conn.OnRTTSample = func(at sim.Time, rtt time.Duration) {
		r.Samples = append(r.Samples, RTTSample{At: at, RTT: rtt})
	}
}

// Milliseconds returns all samples in milliseconds.
func (r *RTTRecorder) Milliseconds() []float64 {
	out := make([]float64, len(r.Samples))
	for i, s := range r.Samples {
		out[i] = s.RTT.Seconds() * 1000
	}
	return out
}
