package trace

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"starlinkperf/internal/netem"
	"starlinkperf/internal/quic"
	"starlinkperf/internal/sim"
)

func rec(pn uint64, atMS int64) PacketRecord {
	return PacketRecord{PN: pn, At: sim.Time(atMS) * sim.Time(time.Millisecond), Size: 1350}
}

func TestAnalyzeLossesNoLoss(t *testing.T) {
	var recs []PacketRecord
	for i := uint64(0); i < 100; i++ {
		recs = append(recs, rec(i, int64(i)))
	}
	rep := AnalyzeLosses(recs)
	if rep.PacketsLost != 0 || len(rep.Events) != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.PacketsSent != 100 || rep.PacketsReceived != 100 {
		t.Fatalf("sent/received = %d/%d", rep.PacketsSent, rep.PacketsReceived)
	}
}

func TestAnalyzeLossesSingleGap(t *testing.T) {
	recs := []PacketRecord{rec(0, 0), rec(1, 1), rec(5, 10), rec(6, 11)}
	rep := AnalyzeLosses(recs)
	if rep.PacketsLost != 3 {
		t.Fatalf("lost = %d, want 3", rep.PacketsLost)
	}
	if len(rep.Events) != 1 {
		t.Fatalf("events = %d", len(rep.Events))
	}
	e := rep.Events[0]
	if e.FirstPN != 2 || e.Burst != 3 {
		t.Errorf("event = %+v", e)
	}
	if e.Duration() != 9*time.Millisecond {
		t.Errorf("duration = %v, want 9ms (between arrivals at 1ms and 10ms)", e.Duration())
	}
}

func TestAnalyzeLossesMultipleBursts(t *testing.T) {
	recs := []PacketRecord{rec(0, 0), rec(2, 2), rec(3, 3), rec(7, 9), rec(8, 10)}
	rep := AnalyzeLosses(recs)
	if rep.PacketsLost != 4 { // pn 1 and pns 4,5,6
		t.Fatalf("lost = %d", rep.PacketsLost)
	}
	bl := rep.BurstLengths()
	if len(bl) != 2 || bl[0] != 1 || bl[1] != 3 {
		t.Fatalf("bursts = %v", bl)
	}
	if rep.LossRate() != 4.0/9.0 {
		t.Errorf("loss rate = %v", rep.LossRate())
	}
}

func TestAnalyzeLossesLeadingGap(t *testing.T) {
	recs := []PacketRecord{rec(2, 5), rec(3, 6)}
	rep := AnalyzeLosses(recs)
	if rep.PacketsLost != 2 {
		t.Fatalf("lost = %d, want the two missing handshake packets", rep.PacketsLost)
	}
	if rep.Events[0].FirstPN != 0 || rep.Events[0].Burst != 2 {
		t.Fatalf("event = %+v", rep.Events[0])
	}
}

func TestAnalyzeLossesIgnoresRetransmissionArrivalOrder(t *testing.T) {
	// A duplicate/late lower PN must not create a phantom gap.
	recs := []PacketRecord{rec(0, 0), rec(1, 1), rec(3, 3), rec(2, 4), rec(4, 5)}
	rep := AnalyzeLosses(recs)
	// Gap {2} recorded when 3 arrived; the late 2 is not re-counted and
	// 3->4 is contiguous from the highest-seen perspective.
	if rep.PacketsLost != 1 || len(rep.Events) != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestAnalyzeSenderView(t *testing.T) {
	ranges := []quic.AckRange{{Smallest: 0, Largest: 4}, {Smallest: 7, Largest: 9}}
	rep := AnalyzeSenderView(10, ranges)
	if rep.PacketsLost != 2 || rep.PacketsReceived != 8 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Events) != 1 || rep.Events[0].FirstPN != 5 || rep.Events[0].Burst != 2 {
		t.Fatalf("events = %+v", rep.Events)
	}
}

func TestCaptureEndToEnd(t *testing.T) {
	// Drive a real lossy QUIC transfer and verify capture-based loss
	// accounting agrees with link drop counters.
	s := sim.NewScheduler(71)
	nw := netem.New(s)
	a := nw.NewNode("c", netem.MustParseAddr("10.0.0.1"))
	b := nw.NewNode("s", netem.MustParseAddr("10.0.0.2"))
	lossy := netem.LinkConfig{
		RateBps: 50e6, Delay: netem.ConstantDelay(20 * time.Millisecond),
		Loss: &netem.BernoulliLoss{P: 0.02, Rng: s.RNG().Stream("l")},
	}
	clean := netem.LinkConfig{RateBps: 50e6, Delay: netem.ConstantDelay(20 * time.Millisecond)}
	ab := nw.AddLink(a, b, lossy)
	ba := nw.AddLink(b, a, clean)
	a.AddRoute(b.Addr(), ab)
	b.AddRoute(a.Addr(), ba)

	var wireDrops uint64
	ab.DropHook = func(sim.Time, *netem.Packet, netem.DropReason) { wireDrops++ }

	cep := quic.NewEndpoint(a, 5000)
	sep := quic.NewEndpoint(b, 443)
	var cap Capture
	done := false
	sep.Listen(quic.DefaultConfig(), func(c *quic.Connection) {
		cap.AttachReceiver(c)
		c.OnStream = func(st *quic.Stream) {
			st.OnData = func(_ []byte, fin bool) {
				if fin {
					done = true
				}
			}
		}
	})
	conn := cep.Dial(b.Addr(), 443, quic.DefaultConfig())
	var rtts RTTRecorder
	rtts.Attach(conn)
	conn.OnEstablished = func() {
		st := conn.OpenStream()
		st.WriteZeroes(1 << 20)
		st.Close()
	}
	s.RunFor(60 * time.Second)
	if !done {
		t.Fatal("transfer incomplete")
	}

	rep := AnalyzeLosses(cap.Received)
	if rep.PacketsLost == 0 {
		t.Fatal("no losses detected on a 2% lossy link")
	}
	// Capture-derived losses can only miss drops after the last arrival;
	// they must never exceed the wire truth.
	if rep.PacketsLost > wireDrops {
		t.Errorf("capture losses %d > wire drops %d", rep.PacketsLost, wireDrops)
	}
	if wireDrops-rep.PacketsLost > 3 {
		t.Errorf("capture missed %d of %d wire drops", wireDrops-rep.PacketsLost, wireDrops)
	}
	// Loss-event durations are positive and bounded by the transfer.
	for _, e := range rep.Events {
		if e.Duration() < 0 || e.Duration() > time.Minute {
			t.Errorf("implausible event duration %v", e.Duration())
		}
	}
	if len(rtts.Samples) == 0 {
		t.Error("no RTT samples recorded")
	}
}

func TestPcapWriterFormat(t *testing.T) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	if err := w.WritePacket(1_500_000_000, []byte{1, 2, 3, 4}, 1350); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(2_000_000_000, []byte{5, 6}, 60); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) != 24+16+4+16+2 {
		t.Fatalf("file size = %d", len(b))
	}
	if binary.LittleEndian.Uint32(b[0:]) != pcapMagic {
		t.Error("bad magic")
	}
	if binary.LittleEndian.Uint32(b[20:]) != pcapLinktypeRaw {
		t.Error("bad linktype")
	}
	// First record header.
	if binary.LittleEndian.Uint32(b[24:]) != 1 { // 1.5s -> 1 sec
		t.Error("bad ts_sec")
	}
	if binary.LittleEndian.Uint32(b[28:]) != 500000 { // 0.5s in usec
		t.Error("bad ts_usec")
	}
	if binary.LittleEndian.Uint32(b[32:]) != 4 || binary.LittleEndian.Uint32(b[36:]) != 1350 {
		t.Error("bad lengths")
	}
	if w.Packets != 2 {
		t.Errorf("packets = %d", w.Packets)
	}
}

func TestPcapWriteCapture(t *testing.T) {
	var c Capture
	c.Received = []PacketRecord{rec(0, 0), rec(1, 1)}
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	if err := w.WriteCapture(&c); err != nil {
		t.Fatal(err)
	}
	if w.Packets != 2 {
		t.Errorf("packets = %d", w.Packets)
	}
}
