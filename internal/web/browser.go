package web

import (
	"sort"
	"time"

	"starlinkperf/internal/netem"
	"starlinkperf/internal/sim"
	"starlinkperf/internal/tcpsim"
)

// Request is the application message a browser sends per object.
type Request struct {
	Size int
	Proc time.Duration
}

// RequestBytes is the modeled HTTP request size.
const RequestBytes = 430

// Server hosts web content on a node: it answers each Request message
// with the requested number of bytes after the request's processing time.
func Server(node *netem.Node, port uint16, cfg tcpsim.Config) {
	tcpsim.Listen(node, port, cfg, func(c *tcpsim.Conn) {
		sched := node.Scheduler()
		c.OnMsg = func(m any) {
			req, ok := m.(Request)
			if !ok {
				return
			}
			sched.After(req.Proc, func() {
				if c.State() != tcpsim.StateClosed {
					c.Write(req.Size)
				}
			})
		}
	})
}

// Resolver maps a site's domain index to a host address and port.
type Resolver func(domain int) (netem.Addr, uint16)

// Browser drives page visits from a node. The model follows what
// BrowserTime measures: network fetches over per-domain connections
// (HTTP/2-style multiplexing), script/stylesheet discovery chains, and a
// serial main thread whose parse/execute time is part of onLoad.
type Browser struct {
	Node *netem.Node
	// Resolve maps domains to servers.
	Resolve Resolver
	// TCP is the connection configuration (TLS rounds count here: the
	// 2022 web mix is mostly TLS 1.2/1.3; DefaultConfig uses 1.2).
	TCP tcpsim.Config
	// Deadline aborts visits that run too long (BrowserTime's timeout).
	Deadline time.Duration
}

// visitConn tracks one connection of a visit.
type visitConn struct {
	conn      *tcpsim.Conn
	queue     []fetchItem // awaiting request (pre-establishment)
	responses []fetchItem // requested, awaiting response bytes
	delivered int         // bytes received toward responses[0]
}

// fetchItem is one resource in flight; idx == -1 is the HTML document.
type fetchItem struct {
	idx int
	obj Object
}

// Visit loads the site and reports QoE metrics to done.
func (b *Browser) Visit(site *Site, done func(VisitResult)) {
	sched := b.Node.Scheduler()
	start := sched.Now()
	deadline := b.Deadline
	if deadline <= 0 {
		deadline = 60 * time.Second
	}

	res := VisitResult{Site: site}
	conns := make(map[int]*visitConn)
	finished := false
	var deadlineTimer sim.TimerHandle
	finish := func(failed bool) {
		if finished {
			return
		}
		finished = true
		res.Failed = failed
		deadlineTimer.Stop()
		// Abort in domain order: Abort() schedules RST events, and map
		// iteration order would make their sequence — and thus every
		// event after them — vary between otherwise identical runs.
		domains := make([]int, 0, len(conns))
		for d := range conns {
			domains = append(domains, d)
		}
		sort.Ints(domains)
		for _, d := range domains {
			if vc := conns[d]; vc.conn.State() != tcpsim.StateClosed {
				vc.conn.Abort()
			}
		}
		done(res)
	}
	deadlineTimer = sched.After(deadline, func() { finish(true) })

	// SpeedIndex accounting over above-fold bytes.
	totalAF := float64(site.HTMLSize)
	for _, o := range site.Objects {
		if o.AboveFold {
			totalAF += float64(o.Size)
		}
	}
	var afWeighted float64
	var lastAF time.Duration
	remaining := len(site.Objects) + 1 // + HTML

	// The browser main thread: parse/execute costs serialize.
	var cpuFree sim.Time

	// Dependency bookkeeping.
	dependents := make(map[int][]int)
	for j, o := range site.Objects {
		if o.DependsOn >= 0 && o.DependsOn < j {
			dependents[o.DependsOn] = append(dependents[o.DependsOn], j)
		}
	}

	var openConn func(domain int) *visitConn
	var request func(item fetchItem)
	var objectDone func(item fetchItem)

	// objectDone runs after network completion: the main thread spends
	// the CPU cost, then the resource counts as complete and unlocks its
	// dependents.
	objectDone = func(item fetchItem) {
		cpu := 15 * time.Millisecond // HTML parse floor
		if item.idx >= 0 {
			cpu = item.obj.CPU
		}
		startCPU := sched.Now()
		if cpuFree > startCPU {
			startCPU = cpuFree
		}
		doneAt := startCPU.Add(cpu)
		cpuFree = doneAt
		sched.At(doneAt, func() {
			if finished {
				return
			}
			t := sched.Now().Sub(start)
			if item.idx < 0 || item.obj.AboveFold {
				size := site.HTMLSize
				if item.idx >= 0 {
					size = item.obj.Size
				}
				afWeighted += t.Seconds() * float64(size)
				if t > lastAF {
					lastAF = t
				}
			}
			remaining--
			if item.idx < 0 {
				// HTML parsed: discover every root resource.
				for j, obj := range site.Objects {
					if obj.DependsOn < 0 || obj.DependsOn >= j {
						request(fetchItem{idx: j, obj: obj})
					}
				}
			}
			for _, j := range dependents[item.idx] {
				request(fetchItem{idx: j, obj: site.Objects[j]})
			}
			if remaining == 0 {
				res.OnLoad = t
				// SpeedIndex integrates visual incompleteness: partial
				// progress as above-fold bytes arrive (first term) and
				// the final paint of the viewport, which waits for the
				// last above-fold resource (second term, weighted like
				// the layout-settling that real pages exhibit).
				progress := afWeighted / totalAF
				res.SpeedIndex = time.Duration((progress + 2*lastAF.Seconds()) / 3 * float64(time.Second))
				finish(false)
			}
		})
	}

	openConn = func(domain int) *visitConn {
		if vc, ok := conns[domain]; ok {
			return vc
		}
		addr, port := b.Resolve(domain)
		vc := &visitConn{}
		vc.conn = tcpsim.Dial(b.Node, addr, port, b.TCP)
		conns[domain] = vc
		res.Connections++
		vc.conn.OnEstablished = func() {
			res.ConnSetupTimes = append(res.ConnSetupTimes, vc.conn.SetupTime())
			for _, it := range vc.queue {
				vc.conn.WriteMsg(RequestBytes, Request{Size: it.obj.Size, Proc: it.obj.Proc})
				vc.responses = append(vc.responses, it)
			}
			vc.queue = nil
		}
		vc.conn.OnData = func(n int, fin bool) {
			vc.delivered += n
			for len(vc.responses) > 0 && vc.delivered >= vc.responses[0].obj.Size {
				vc.delivered -= vc.responses[0].obj.Size
				it := vc.responses[0]
				vc.responses = vc.responses[1:]
				objectDone(it)
			}
		}
		return vc
	}

	request = func(item fetchItem) {
		vc := openConn(item.obj.Domain)
		if vc.conn.Ready() {
			vc.conn.WriteMsg(RequestBytes, Request{Size: item.obj.Size, Proc: item.obj.Proc})
			vc.responses = append(vc.responses, item)
		} else {
			vc.queue = append(vc.queue, item)
		}
	}

	// Kick off with the HTML document from the origin.
	request(fetchItem{
		idx: -1,
		obj: Object{Domain: 0, Size: site.HTMLSize, AboveFold: true, Proc: 20 * time.Millisecond},
	})
}
