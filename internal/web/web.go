// Package web models the paper's browsing experiments: a corpus of
// websites with realistic object/domain/size statistics, an HTTP-over-TCP
// fetch engine driven through the emulated network, and the two
// QoE-correlated metrics the paper reports — onLoad (all objects
// downloaded) and SpeedIndex (byte-weighted visual completeness).
//
// Page statistics follow the web-measurement literature for the 2021-22
// web: ~70 objects and ~15 contacted domains per page in the median, a
// median page weight around 2 MB, and heavy-tailed object sizes.
package web

import (
	"time"

	"starlinkperf/internal/sim"
)

// Object is one page resource.
type Object struct {
	// Domain indexes the site's domain list.
	Domain int
	// Size is the transfer size in bytes.
	Size int
	// AboveFold marks resources that contribute to the visible
	// viewport (SpeedIndex weighting).
	AboveFold bool
	// Proc is the server processing time for this object.
	Proc time.Duration
	// CPU is the client-side parse/execute cost, consumed serially on
	// the browser main thread.
	CPU time.Duration
	// DependsOn holds the index of an earlier object that must finish
	// before this one is discovered (CSS→font, JS→XHR chains); -1 for
	// resources visible in the HTML.
	DependsOn int
}

// Site is one website of the corpus.
type Site struct {
	Rank     int
	HTMLSize int
	// Domains is how many distinct hosts serve the page (the paper
	// observes ~15 connections per visit).
	Domains int
	Objects []Object
}

// TotalBytes returns the page weight including HTML.
func (s *Site) TotalBytes() int {
	t := s.HTMLSize
	for _, o := range s.Objects {
		t += o.Size
	}
	return t
}

// GenerateCorpus builds n sites with statistics drawn from rng. The same
// rng seed yields the same corpus, so campaigns are reproducible.
func GenerateCorpus(rng *sim.RNG, n int) []Site {
	sites := make([]Site, n)
	for i := range sites {
		sites[i] = generateSite(rng, i+1)
	}
	return sites
}

func generateSite(rng *sim.RNG, rank int) Site {
	// Object count: log-normal, median ~80, clipped to [10, 260].
	nObj := int(rng.LogNormal(4.38, 0.5))
	nObj = clamp(nObj, 10, 260)
	// Domains: log-normal, median ~14, clipped to [2, 32], never more
	// than the object count.
	nDom := clamp(int(rng.LogNormal(2.64, 0.45)), 2, 32)
	if nDom > nObj {
		nDom = nObj
	}
	site := Site{
		Rank: rank,
		// HTML: log-normal, median ~90 kB.
		HTMLSize: clamp(int(rng.LogNormal(11.4, 0.7)), 8_000, 900_000),
		Domains:  nDom,
	}
	// Above-fold resources: the first ~80% of objects in discovery
	// order contribute to the viewport's visual completeness.
	aboveFold := nObj * 80 / 100
	for j := 0; j < nObj; j++ {
		// Object sizes: log-normal, median ~14 kB, heavy tail.
		size := clamp(int(rng.LogNormal(9.55, 1.2)), 200, 4<<20)
		dom := 0
		if j > 0 {
			// First object after HTML tends to come from the origin;
			// the rest spread over the domains with a bias to the
			// origin and the first CDN.
			r := rng.Float64()
			switch {
			case r < 0.35:
				dom = 0
			case r < 0.55 && nDom > 1:
				dom = 1
			default:
				dom = rng.IntN(nDom)
			}
		}
		dep := -1
		// ~25% of later resources are discovered only after an earlier
		// one executes (script- and stylesheet-driven chains); the rest
		// of the long tail is discovered progressively as the parser
		// works through the document (a rolling window of ~12).
		if j >= 8 && rng.Float64() < 0.25 {
			dep = j - 4 - rng.IntN(4)
		} else if j >= 16 {
			dep = j - 12
		}
		site.Objects = append(site.Objects, Object{
			Domain:    dom,
			Size:      size,
			AboveFold: j < aboveFold,
			Proc:      time.Duration(2+rng.IntN(18)) * time.Millisecond,
			CPU:       time.Duration(6+rng.IntN(15)) * time.Millisecond,
			DependsOn: dep,
		})
	}
	return site
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// VisitResult carries the QoE metrics of one page visit.
type VisitResult struct {
	Site *Site
	// OnLoad is the time from navigation start until every object has
	// been downloaded (the browser's onLoad event).
	OnLoad time.Duration
	// SpeedIndex approximates Google's metric: the byte-weighted mean
	// completion time of above-fold content.
	SpeedIndex time.Duration
	// Connections is how many TCP connections the visit opened.
	Connections int
	// ConnSetupTimes holds the TCP+TLS establishment time of each.
	ConnSetupTimes []time.Duration
	// Failed marks visits that did not complete before the deadline.
	Failed bool
}

// MeanSetup returns the average connection setup time of the visit.
func (v VisitResult) MeanSetup() time.Duration {
	if len(v.ConnSetupTimes) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range v.ConnSetupTimes {
		sum += d
	}
	return sum / time.Duration(len(v.ConnSetupTimes))
}
