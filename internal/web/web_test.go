package web

import (
	"testing"
	"time"

	"starlinkperf/internal/netem"
	"starlinkperf/internal/sim"
	"starlinkperf/internal/tcpsim"
)

func TestCorpusStatistics(t *testing.T) {
	rng := sim.NewRNG(1).Stream("corpus")
	sites := GenerateCorpus(rng, 120)
	if len(sites) != 120 {
		t.Fatalf("sites = %d", len(sites))
	}
	var objs, doms, weights []float64
	for _, s := range sites {
		objs = append(objs, float64(len(s.Objects)))
		doms = append(doms, float64(s.Domains))
		weights = append(weights, float64(s.TotalBytes()))
		if s.Domains < 2 || s.Domains > 32 {
			t.Errorf("site %d domains = %d", s.Rank, s.Domains)
		}
		for _, o := range s.Objects {
			if o.Domain < 0 || o.Domain >= s.Domains {
				t.Fatalf("object domain %d out of range", o.Domain)
			}
			if o.Size < 200 {
				t.Fatalf("object size %d too small", o.Size)
			}
		}
	}
	medObjs := med(objs)
	medDoms := med(doms)
	medW := med(weights)
	if medObjs < 30 || medObjs > 90 {
		t.Errorf("median objects/page = %v, want ~55", medObjs)
	}
	if medDoms < 8 || medDoms > 22 {
		t.Errorf("median domains/page = %v, want ~14", medDoms)
	}
	if medW < 500e3 || medW > 5e6 {
		t.Errorf("median page weight = %v, want ~2MB", medW)
	}
}

func TestCorpusDeterminism(t *testing.T) {
	a := GenerateCorpus(sim.NewRNG(9).Stream("c"), 10)
	b := GenerateCorpus(sim.NewRNG(9).Stream("c"), 10)
	for i := range a {
		if len(a[i].Objects) != len(b[i].Objects) || a[i].HTMLSize != b[i].HTMLSize {
			t.Fatal("corpus generation is not deterministic")
		}
	}
}

func med(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

// webTestbed: client -(access link)- gw - N server nodes (one per domain
// pool slot).
func webTestbed(t *testing.T, access netem.LinkConfig, rttToServers time.Duration) (*sim.Scheduler, *Browser) {
	t.Helper()
	s := sim.NewScheduler(77)
	nw := netem.New(s)
	client := nw.NewNode("client", netem.MustParseAddr("10.0.0.2"))
	gw := nw.NewNode("gw", netem.MustParseAddr("10.0.0.1"))
	c2g, g2c := nw.Connect(client, gw, access)
	client.SetDefaultRoute(c2g)
	gw.AddRoute(client.Addr(), g2c)

	cfg := tcpsim.DefaultConfig() // TLS 1.2
	const pool = 8
	servers := make([]*netem.Node, pool)
	for i := 0; i < pool; i++ {
		servers[i] = nw.NewNode("srv"+string(rune('a'+i)), netem.Addr(0x08080801+uint32(i)))
		core := netem.LinkConfig{RateBps: 1e9, Delay: netem.ConstantDelay(rttToServers / 2), QueueBytes: 4 << 20}
		g2s, s2g := nw.Connect(gw, servers[i], core)
		gw.AddRoute(servers[i].Addr(), g2s)
		servers[i].SetDefaultRoute(s2g)
		Server(servers[i], 443, cfg)
	}
	b := &Browser{
		Node: client,
		Resolve: func(domain int) (netem.Addr, uint16) {
			return servers[domain%pool].Addr(), 443
		},
		TCP:      cfg,
		Deadline: 120 * time.Second,
	}
	return s, b
}

func fastAccess() netem.LinkConfig {
	return netem.LinkConfig{RateBps: 500e6, Delay: netem.ConstantDelay(2 * time.Millisecond), QueueBytes: 4 << 20}
}

func TestVisitCompletes(t *testing.T) {
	s, b := webTestbed(t, fastAccess(), 10*time.Millisecond)
	site := GenerateCorpus(sim.NewRNG(3).Stream("x"), 1)[0]
	var res VisitResult
	got := false
	b.Visit(&site, func(r VisitResult) { res, got = r, true })
	s.RunFor(3 * time.Minute)
	if !got {
		t.Fatal("visit never finished")
	}
	if res.Failed {
		t.Fatal("visit failed")
	}
	if res.OnLoad <= 0 {
		t.Error("onLoad not measured")
	}
	if res.SpeedIndex <= 0 || res.SpeedIndex > res.OnLoad {
		t.Errorf("SpeedIndex %v vs onLoad %v: SI must be positive and below onLoad", res.SpeedIndex, res.OnLoad)
	}
	used := map[int]bool{0: true}
	for _, o := range site.Objects {
		used[o.Domain] = true
	}
	if res.Connections != len(used) {
		t.Errorf("connections = %d, want %d (one per contacted domain)", res.Connections, len(used))
	}
	if len(res.ConnSetupTimes) != res.Connections {
		t.Errorf("setup times = %d", len(res.ConnSetupTimes))
	}
}

func TestVisitSlowerOnHighLatencyAccess(t *testing.T) {
	site := GenerateCorpus(sim.NewRNG(5).Stream("y"), 1)[0]
	run := func(access netem.LinkConfig) VisitResult {
		s, b := webTestbed(t, access, 10*time.Millisecond)
		var res VisitResult
		b.Visit(&site, func(r VisitResult) { res = r })
		s.RunFor(5 * time.Minute)
		return res
	}
	fast := run(fastAccess())
	slow := run(netem.LinkConfig{RateBps: 100e6, Delay: netem.ConstantDelay(290 * time.Millisecond), QueueBytes: 4 << 20})
	if fast.Failed || slow.Failed {
		t.Fatal("visit failed")
	}
	// A GEO-like access multiplies every handshake and request RTT.
	if slow.OnLoad < 4*fast.OnLoad {
		t.Errorf("GEO onLoad %v should dwarf wired %v", slow.OnLoad, fast.OnLoad)
	}
	if slow.MeanSetup() < 3*fast.MeanSetup() {
		t.Errorf("GEO setup %v vs wired %v", slow.MeanSetup(), fast.MeanSetup())
	}
}

func TestVisitDeadline(t *testing.T) {
	// Access link fully down: the visit must fail at the deadline.
	access := netem.LinkConfig{Down: func(sim.Time) bool { return true }}
	s, b := webTestbed(t, access, 10*time.Millisecond)
	b.Deadline = 10 * time.Second
	site := GenerateCorpus(sim.NewRNG(7).Stream("z"), 1)[0]
	var res VisitResult
	got := false
	b.Visit(&site, func(r VisitResult) { res, got = r, true })
	s.RunFor(time.Minute)
	if !got || !res.Failed {
		t.Fatalf("expected a failed visit, got %+v (done=%v)", res, got)
	}
}
