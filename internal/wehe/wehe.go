// Package wehe implements a traffic-discrimination detector after Wehe
// (Li et al., SIGCOMM 2019): it replays recorded application traces
// twice — once looking like the original service (classifiable by the
// operator) and once with randomized bytes/ports (unclassifiable) — and
// compares the achieved throughput distributions with a KS test. A
// significant difference indicates the operator treats the service
// specially.
//
// The paper ran the full Wehe suite (22 services, 10 runs) on Starlink
// and found no differentiation.
package wehe

import (
	"fmt"
	"time"

	"starlinkperf/internal/netem"
	"starlinkperf/internal/sim"
	"starlinkperf/internal/stats"
	"starlinkperf/internal/tcpsim"
)

// Burst is one element of a service trace: after Offset from the start,
// the server sends Bytes downstream.
type Burst struct {
	Offset time.Duration
	Bytes  int
}

// ServiceTrace is a recorded application session to replay.
type ServiceTrace struct {
	Name string
	// Port is the well-known service port the original replay uses (the
	// classifier's hook; randomized replays use an ephemeral port).
	Port   uint16
	Bursts []Burst
}

// Duration returns the trace length.
func (t *ServiceTrace) Duration() time.Duration {
	if len(t.Bursts) == 0 {
		return 0
	}
	return t.Bursts[len(t.Bursts)-1].Offset
}

// TotalBytes returns the downstream volume.
func (t *ServiceTrace) TotalBytes() int {
	n := 0
	for _, b := range t.Bursts {
		n += b.Bytes
	}
	return n
}

// DefaultServices generates the 22 service traces the detector replays,
// shaped like their real counterparts: video streaming (rate-limited
// chunked downloads), video calls (steady medium rate), and bulk-ish
// app traffic.
func DefaultServices(rng *sim.RNG) []ServiceTrace {
	names := []struct {
		name string
		port uint16
		kind int // 0 = streaming, 1 = call, 2 = bulk
		mbps float64
	}{
		{"netflix", 7001, 0, 15}, {"youtube", 7002, 0, 12}, {"amazon-video", 7003, 0, 10},
		{"disney+", 7004, 0, 25}, {"twitch", 7005, 0, 8}, {"hulu", 7006, 0, 10},
		{"vimeo", 7007, 0, 8}, {"dailymotion", 7008, 0, 6},
		{"zoom", 7101, 1, 3}, {"skype", 7102, 1, 2.5}, {"webex", 7103, 1, 3},
		{"meet", 7104, 1, 3.2}, {"teams", 7105, 1, 3}, {"facetime", 7106, 1, 2.5},
		{"whatsapp-call", 7107, 1, 1.5}, {"spotify", 7201, 0, 2},
		{"appletv", 7202, 0, 18}, {"molotov", 7203, 0, 7}, {"mycanal", 7204, 0, 9},
		{"facebook-video", 7205, 0, 8}, {"instagram-video", 7206, 0, 6}, {"tiktok", 7207, 0, 6},
	}
	traces := make([]ServiceTrace, 0, len(names))
	for _, n := range names {
		tr := ServiceTrace{Name: n.name, Port: n.port}
		dur := 20 * time.Second
		switch n.kind {
		case 0: // streaming: 2s chunks at the target rate
			chunk := int(n.mbps * 1e6 / 8 * 2)
			for off := time.Duration(0); off < dur; off += 2 * time.Second {
				jitter := time.Duration(rng.IntN(200)) * time.Millisecond
				tr.Bursts = append(tr.Bursts, Burst{Offset: off + jitter, Bytes: chunk})
			}
		case 1: // call: 50ms frames
			frame := int(n.mbps * 1e6 / 8 / 20)
			for off := time.Duration(0); off < dur; off += 50 * time.Millisecond {
				size := frame/2 + rng.IntN(frame)
				tr.Bursts = append(tr.Bursts, Burst{Offset: off, Bytes: size})
			}
		}
		traces = append(traces, tr)
	}
	return traces
}

// replayPort is where the replay server listens for randomized runs.
const replayPort = 9999

// Server installs the replay responder on a node: the client's request
// message names the trace; the server then plays the downstream bursts.
func Server(node *netem.Node, traces []ServiceTrace, cfg tcpsim.Config) {
	byName := make(map[string]*ServiceTrace, len(traces))
	ports := make(map[uint16]bool)
	for i := range traces {
		byName[traces[i].Name] = &traces[i]
		ports[traces[i].Port] = true
	}
	handler := func(c *tcpsim.Conn) {
		sched := node.Scheduler()
		c.OnMsg = func(m any) {
			name, ok := m.(string)
			if !ok {
				return
			}
			tr := byName[name]
			if tr == nil {
				return
			}
			for _, b := range tr.Bursts {
				b := b
				sched.After(b.Offset, func() {
					if c.State() != tcpsim.StateClosed {
						c.Write(b.Bytes)
					}
				})
			}
		}
	}
	for port := range ports {
		tcpsim.Listen(node, port, cfg, handler)
	}
	tcpsim.Listen(node, replayPort, cfg, handler)
}

// RunResult is one replay's throughput series.
type RunResult struct {
	// Samples are per-interval throughputs in Mbit/s.
	Samples []float64
	// Bytes is the total received.
	Bytes int
}

// sampleInterval is the throughput bucketing Wehe uses.
const sampleInterval = 250 * time.Millisecond

// Replay runs one trace against the server and reports the downstream
// throughput series. original selects the classifiable port.
func Replay(node *netem.Node, server netem.Addr, tr *ServiceTrace, original bool, cfg tcpsim.Config, done func(RunResult)) {
	sched := node.Scheduler()
	port := tr.Port
	if !original {
		port = replayPort
	}
	c := tcpsim.Dial(node, server, port, cfg)
	var res RunResult
	bucket := 0
	var bucketStart sim.Time
	c.OnEstablished = func() {
		bucketStart = sched.Now()
		c.WriteMsg(200, tr.Name)
	}
	c.OnData = func(n int, fin bool) {
		res.Bytes += n
		bucket += n
	}
	var tick func()
	tick = func() {
		if c.State() == tcpsim.StateClosed {
			return
		}
		if c.Ready() {
			res.Samples = append(res.Samples, float64(bucket)*8/sampleInterval.Seconds()/1e6)
			bucket = 0
		}
		sched.After(sampleInterval, tick)
	}
	sched.After(sampleInterval, tick)
	_ = bucketStart
	sched.After(tr.Duration()+8*time.Second, func() {
		c.Abort()
		done(res)
	})
}

// Detection is the verdict for one service.
type Detection struct {
	Service string
	// OriginalMbps and RandomMbps are mean throughputs across runs.
	OriginalMbps, RandomMbps float64
	// KSStat and PValue come from the two-sample KS test over all
	// throughput samples.
	KSStat, PValue float64
	// Differentiated applies Wehe's criterion: significant KS result
	// and a rate gap above 10%.
	Differentiated bool
}

// String implements fmt.Stringer.
func (d Detection) String() string {
	verdict := "no differentiation"
	if d.Differentiated {
		verdict = "DIFFERENTIATED"
	}
	return fmt.Sprintf("%-16s orig=%6.2f Mbit/s rand=%6.2f Mbit/s KS=%.3f p=%.4f -> %s",
		d.Service, d.OriginalMbps, d.RandomMbps, d.KSStat, d.PValue, verdict)
}

// Detect replays a service repeats times in each mode and issues the
// verdict.
func Detect(node *netem.Node, server netem.Addr, tr *ServiceTrace, repeats int, cfg tcpsim.Config, done func(Detection)) {
	var orig, rand []float64
	var origBytes, randBytes int
	runs := 0
	var next func()
	finish := func() {
		d := Detection{Service: tr.Name}
		wall := (tr.Duration() + 8*time.Second).Seconds() * float64(repeats)
		d.OriginalMbps = float64(origBytes) * 8 / wall / 1e6
		d.RandomMbps = float64(randBytes) * 8 / wall / 1e6
		d.KSStat, d.PValue = stats.KolmogorovSmirnov(orig, rand)
		gap := 0.0
		if d.RandomMbps > 0 {
			gap = (d.RandomMbps - d.OriginalMbps) / d.RandomMbps
			if gap < 0 {
				gap = -gap
			}
		}
		d.Differentiated = d.PValue < 0.05 && gap > 0.10
		done(d)
	}
	next = func() {
		if runs >= repeats {
			finish()
			return
		}
		runs++
		Replay(node, server, tr, true, cfg, func(o RunResult) {
			orig = append(orig, o.Samples...)
			origBytes += o.Bytes
			Replay(node, server, tr, false, cfg, func(r RunResult) {
				rand = append(rand, r.Samples...)
				randBytes += r.Bytes
				next()
			})
		})
	}
	next()
}
