package wehe

import (
	"testing"
	"time"

	"starlinkperf/internal/netem"
	"starlinkperf/internal/sim"
	"starlinkperf/internal/tcpsim"
)

func testbed(t *testing.T, shaped bool, shapeMbps float64, targetPort uint16) (*sim.Scheduler, *netem.Node, *netem.Node) {
	t.Helper()
	s := sim.NewScheduler(55)
	nw := netem.New(s)
	client := nw.NewNode("client", netem.MustParseAddr("10.0.0.2"))
	mid := nw.NewNode("mid", netem.MustParseAddr("10.0.0.1"))
	server := nw.NewNode("server", netem.MustParseAddr("8.8.8.8"))
	access := netem.LinkConfig{RateBps: 100e6, Delay: netem.ConstantDelay(15 * time.Millisecond), QueueBytes: 2 << 20}
	c2m, m2c := nw.Connect(client, mid, access)
	m2s, s2m := nw.Connect(mid, server, access)
	client.SetDefaultRoute(c2m)
	mid.AddRoute(client.Addr(), m2c)
	mid.AddRoute(server.Addr(), m2s)
	server.SetDefaultRoute(s2m)
	if shaped {
		mid.AttachDevice(&netem.TokenBucketShaper{
			RateBps:    shapeMbps * 1e6,
			BurstBytes: 64 << 10,
			Match: func(pkt *netem.Packet) bool {
				// Throttle the service port in both directions.
				return pkt.SrcPort == targetPort || pkt.DstPort == targetPort
			},
		})
	}
	return s, client, server
}

func TestDefaultServices(t *testing.T) {
	rng := sim.NewRNG(1).Stream("svc")
	traces := DefaultServices(rng)
	if len(traces) != 22 {
		t.Fatalf("services = %d, want 22 (the Wehe suite)", len(traces))
	}
	seen := map[string]bool{}
	for _, tr := range traces {
		if seen[tr.Name] {
			t.Errorf("duplicate service %q", tr.Name)
		}
		seen[tr.Name] = true
		if len(tr.Bursts) == 0 {
			t.Errorf("%s: empty trace", tr.Name)
		}
		if tr.TotalBytes() <= 0 || tr.Duration() <= 0 {
			t.Errorf("%s: degenerate trace", tr.Name)
		}
	}
}

func TestNoDifferentiationOnNeutralPath(t *testing.T) {
	rng := sim.NewRNG(2).Stream("svc")
	traces := DefaultServices(rng)
	tr := &traces[0] // netflix, 15 Mbit/s
	s, client, server := testbed(t, false, 0, 0)
	cfg := tcpsim.DefaultConfig()
	cfg.TLSRounds = 0
	Server(server, traces, cfg)
	var det Detection
	got := false
	Detect(client, server.Addr(), tr, 3, cfg, func(d Detection) { det, got = d, true })
	s.RunFor(30 * time.Minute)
	if !got {
		t.Fatal("detection did not finish")
	}
	if det.Differentiated {
		t.Errorf("false positive on neutral path: %v", det)
	}
	if det.OriginalMbps <= 0 || det.RandomMbps <= 0 {
		t.Errorf("no throughput measured: %v", det)
	}
}

func TestDetectsShapedService(t *testing.T) {
	rng := sim.NewRNG(3).Stream("svc")
	traces := DefaultServices(rng)
	tr := &traces[0] // netflix at port 7001, 15 Mbit/s demand
	// Shape the service port to 2 Mbit/s: original runs starve.
	s, client, server := testbed(t, true, 2, tr.Port)
	cfg := tcpsim.DefaultConfig()
	cfg.TLSRounds = 0
	Server(server, traces, cfg)
	var det Detection
	got := false
	Detect(client, server.Addr(), tr, 3, cfg, func(d Detection) { det, got = d, true })
	s.RunFor(30 * time.Minute)
	if !got {
		t.Fatal("detection did not finish")
	}
	if !det.Differentiated {
		t.Errorf("shaper not detected: %v", det)
	}
	if det.OriginalMbps >= det.RandomMbps {
		t.Errorf("original should be slower than randomized: %v", det)
	}
}
