// Package starlinkperf reproduces "A First Look at Starlink Performance"
// (Michel, Trevisan, Giordano, Bonaventure — IMC '22) as a deterministic
// simulation: a LEO-constellation-backed emulated testbed with the
// paper's three vantage points (Starlink, GEO SatCom with a dual PEP,
// wired campus), the measurement tools it used (ping, traceroute,
// Tracebox, an Ookla-like speedtest, QUIC bulk and message workloads, a
// BrowserTime-like web QoE harness, a Wehe-like traffic-discrimination
// detector), and campaign drivers that regenerate every table and figure
// of the paper's evaluation.
//
// Quick start:
//
//	tb := starlinkperf.NewTestbed(starlinkperf.DefaultConfig())
//	lat := tb.RunLatencyCampaign(24*time.Hour, 5*time.Minute)
//	for _, row := range starlinkperf.Figure1(lat, tb.Anchors) {
//	    fmt.Println(row.Anchor, row.Summary)
//	}
//
// Everything runs on a virtual clock: months of measurements complete in
// seconds, and a fixed Config.Seed reproduces a campaign bit for bit.
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package starlinkperf

import (
	"starlinkperf/internal/core"
	"starlinkperf/internal/errant"
	"starlinkperf/internal/sim"
)

// Config parameterizes the testbed (seed, Starlink access model, SatCom
// model, web corpus size, campaign scenario events).
type Config = core.Config

// StarlinkParams models the Starlink access link.
type StarlinkParams = core.StarlinkParams

// SatComParams models the GEO access.
type SatComParams = core.SatComParams

// LoadEpisode adds extra delay during a campaign window (the paper's
// late-April RTT bump).
type LoadEpisode = core.LoadEpisode

// Testbed is the wired emulation environment with its three vantage
// points and all destination infrastructure.
type Testbed = core.Testbed

// Anchor is one latency target of the ping campaign.
type Anchor = core.Anchor

// Tech selects a vantage point for comparative campaigns.
type Tech = core.Tech

// Vantage points.
const (
	TechStarlink = core.TechStarlink
	TechSatCom   = core.TechSatCom
	TechWired    = core.TechWired
)

// Campaign result types.
type (
	// LatencyData is the anchor ping campaign output (Figures 1 and 2).
	LatencyData = core.LatencyData
	// H3Campaign aggregates bulk QUIC transfers (Figure 3, Table 2,
	// Figures 4 and 5).
	H3Campaign = core.H3Campaign
	// MsgCampaign aggregates low-rate message sessions (Table 2,
	// Figure 4b).
	MsgCampaign = core.MsgCampaign
	// MiddleboxAudit holds the §3.5 traceroute/Tracebox/PEP findings.
	MiddleboxAudit = core.MiddleboxAudit
)

// Figure/table builders and renderers.
type (
	// Figure1Row is one anchor's RTT boxplot.
	Figure1Row = core.Figure1Row
	// Figure2Bin is one 6-hour bin of the European RTT timeline.
	Figure2Bin = core.Figure2Bin
	// Figure3 is the RTT-under-load CDF pair.
	Figure3 = core.Figure3
	// Table2 is the QUIC loss-ratio table.
	Table2 = core.Table2
	// Figure4 is a loss-burst-length CDF pair.
	Figure4 = core.Figure4
	// Figure5 is the throughput distribution set.
	Figure5 = core.Figure5
	// Figure6 is the web QoE ECDF set.
	Figure6 = core.Figure6
)

// DefaultConfig returns the calibrated testbed configuration (see
// EXPERIMENTS.md for the calibration record).
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultStarlinkParams returns the calibrated Starlink access model.
func DefaultStarlinkParams() StarlinkParams { return core.DefaultStarlinkParams() }

// DefaultSatComParams returns the calibrated GEO SatCom model.
func DefaultSatComParams() SatComParams { return core.DefaultSatComParams() }

// NewTestbed builds the full emulated environment.
func NewTestbed(cfg Config) *Testbed { return core.NewTestbed(cfg) }

// Figure builders (see the core package for the Render* printers).
var (
	Figure1     = core.Figure1
	Figure2     = core.Figure2
	MakeFigure3 = core.MakeFigure3
	MakeTable2  = core.MakeTable2
	MakeFigure4 = core.MakeFigure4
	MakeFigure5 = core.MakeFigure5
	MakeFigure6 = core.MakeFigure6
)

// ErrantProfiles returns the data-driven emulator models the paper
// released as its artifact (plus comparison technologies), usable without
// the full testbed.
func ErrantProfiles() map[string]errant.Profile { return errant.Builtin() }

// NewRNG returns a deterministic random source compatible with the
// profile draw APIs.
func NewRNG(seed uint64) *sim.RNG { return sim.NewRNG(seed) }
